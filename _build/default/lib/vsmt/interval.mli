(** Integer interval arithmetic, used by the solver for domain propagation.

    An interval [{ lo; hi }] denotes all integers between [lo] and [hi]
    inclusive.  The special bounds {!neg_inf}/{!pos_inf} stand for unbounded
    ends; arithmetic saturates at them.  Intervals over-approximate the set of
    values an expression can take, which lets {!Solver} prune branches that are
    infeasible for every assignment without enumerating. *)

type t = { lo : int; hi : int }

val neg_inf : int
val pos_inf : int

val make : int -> int -> t
(** [make lo hi]; raises [Invalid_argument] when [lo > hi]. *)

val point : int -> t
val top : t
val of_dom : Dom.t -> t
val is_point : t -> bool
val mem : int -> t -> bool
val size : t -> int
(** Number of integers in the interval; {!max_int} when unbounded. *)

val inter : t -> t -> t option
(** Intersection; [None] when empty. *)

val hull : t -> t -> t
(** Smallest interval containing both. *)

val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val mul : t -> t -> t
val div : t -> t -> t
val rem : t -> t -> t

val cmp_result : (int -> int -> bool) -> t -> t -> t
(** Interval of a comparison outcome: [point 1] if it holds for every value
    pair, [point 0] if for none, [make 0 1] otherwise.  Sound only for
    monotone relations (<, <=, >, >=); use {!eq_result}/{!ne_result} for
    equality. *)

val eq_result : t -> t -> t
val ne_result : t -> t -> t

val logical_and : t -> t -> t
val logical_or : t -> t -> t
val logical_not : t -> t

val pp : t Fmt.t
val equal : t -> t -> bool
