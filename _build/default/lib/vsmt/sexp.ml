type t = Atom of string | List of t list

let atom s = Atom s
let list l = List l
let int n = Atom (string_of_int n)
let float f = Atom (Printf.sprintf "%h" f)

let needs_quoting s =
  s = ""
  || String.exists
       (fun c -> c = ' ' || c = '(' || c = ')' || c = '"' || c = '\n' || c = '\t')
       s

let quote s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let rec to_string = function
  | Atom s -> if needs_quoting s then quote s else s
  | List l -> "(" ^ String.concat " " (List.map to_string l) ^ ")"

exception Parse_error of string

let of_string input =
  let n = String.length input in
  let pos = ref 0 in
  let peek () = if !pos < n then Some input.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\n' | '\t' | '\r') ->
      advance ();
      skip_ws ()
    | Some ';' ->
      (* comment to end of line *)
      while peek () <> None && peek () <> Some '\n' do advance () done;
      skip_ws ()
    | _ -> ()
  in
  let parse_quoted () =
    advance ();
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> raise (Parse_error "unterminated string")
      | Some '"' -> advance ()
      | Some '\\' -> begin
        advance ();
        match peek () with
        | Some 'n' -> Buffer.add_char buf '\n'; advance (); go ()
        | Some c -> Buffer.add_char buf c; advance (); go ()
        | None -> raise (Parse_error "dangling escape")
      end
      | Some c ->
        Buffer.add_char buf c;
        advance ();
        go ()
    in
    go ();
    Atom (Buffer.contents buf)
  in
  let parse_atom () =
    let start = !pos in
    let rec go () =
      match peek () with
      | Some (' ' | '\n' | '\t' | '\r' | '(' | ')' | '"') | None -> ()
      | Some _ ->
        advance ();
        go ()
    in
    go ();
    if !pos = start then raise (Parse_error "empty atom");
    Atom (String.sub input start (!pos - start))
  in
  let rec parse_one () =
    skip_ws ();
    match peek () with
    | None -> raise (Parse_error "unexpected end of input")
    | Some '(' ->
      advance ();
      let items = ref [] in
      let rec go () =
        skip_ws ();
        match peek () with
        | Some ')' -> advance ()
        | None -> raise (Parse_error "unterminated list")
        | Some _ ->
          items := parse_one () :: !items;
          go ()
      in
      go ();
      List (List.rev !items)
    | Some '"' -> parse_quoted ()
    | Some ')' -> raise (Parse_error "unexpected )")
    | Some _ -> parse_atom ()
  in
  try
    let s = parse_one () in
    skip_ws ();
    if !pos <> n then Error (Printf.sprintf "trailing input at %d" !pos) else Ok s
  with Parse_error msg -> Error msg

let to_int = function Atom s -> int_of_string_opt s | List _ -> None
let to_float = function Atom s -> float_of_string_opt s | List _ -> None
let to_atom = function Atom s -> Some s | List _ -> None
