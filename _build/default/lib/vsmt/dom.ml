type t =
  | Bool
  | Int_range of { lo : int; hi : int }
  | Enum of { type_name : string; members : string array }

let bool = Bool

let int_range lo hi =
  if lo > hi then invalid_arg "Dom.int_range: empty range";
  Int_range { lo; hi }

let enum type_name members =
  match members with
  | [] -> invalid_arg "Dom.enum: no members"
  | _ -> Enum { type_name; members = Array.of_list members }

let lo = function
  | Bool -> 0
  | Int_range { lo; _ } -> lo
  | Enum _ -> 0

let hi = function
  | Bool -> 1
  | Int_range { hi; _ } -> hi
  | Enum { members; _ } -> Array.length members - 1

let size d = hi d - lo d + 1
let mem d v = v >= lo d && v <= hi d

let value_to_string d v =
  match d with
  | Bool -> if v = 0 then "OFF" else "ON"
  | Int_range _ -> string_of_int v
  | Enum { members; _ } ->
    if v >= 0 && v < Array.length members then members.(v)
    else Printf.sprintf "<invalid:%d>" v

let value_of_string d s =
  let int_opt () = int_of_string_opt (String.trim s) in
  match d with
  | Bool -> begin
    match String.lowercase_ascii (String.trim s) with
    | "on" | "true" | "yes" | "1" -> Some 1
    | "off" | "false" | "no" | "0" -> Some 0
    | _ -> None
  end
  | Int_range _ -> begin
    match int_opt () with Some v when mem d v -> Some v | Some _ | None -> None
  end
  | Enum { members; _ } ->
    let s = String.trim s in
    let found = ref None in
    Array.iteri
      (fun i m -> if String.equal (String.lowercase_ascii m) (String.lowercase_ascii s) then found := Some i)
      members;
    begin
      match !found with
      | Some i -> Some i
      | None -> ( match int_opt () with Some v when mem d v -> Some v | Some _ | None -> None)
    end

let pp ppf = function
  | Bool -> Fmt.string ppf "bool"
  | Int_range { lo; hi } -> Fmt.pf ppf "int[%d..%d]" lo hi
  | Enum { type_name; members } ->
    Fmt.pf ppf "enum %s{%a}" type_name Fmt.(array ~sep:(any ",") string) members

let equal a b =
  match a, b with
  | Bool, Bool -> true
  | Int_range a, Int_range b -> a.lo = b.lo && a.hi = b.hi
  | Enum a, Enum b -> String.equal a.type_name b.type_name && a.members = b.members
  | (Bool | Int_range _ | Enum _), _ -> false
