open Expr

let truthy v = v <> 0

(* One rewriting pass, bottom-up.  Kept to local rules so each is obviously
   semantics-preserving; the qcheck suite checks the composition. *)
let rec simplify e =
  match e with
  | Const _ | Var _ -> e
  | Not a -> begin
    match simplify a with
    | Const v -> Const (if truthy v then 0 else 1)
    | Not b -> simplify_bool b
    | Binop (Eq, x, y) -> Binop (Ne, x, y)
    | Binop (Ne, x, y) -> Binop (Eq, x, y)
    | Binop (Lt, x, y) -> Binop (Ge, x, y)
    | Binop (Le, x, y) -> Binop (Gt, x, y)
    | Binop (Gt, x, y) -> Binop (Le, x, y)
    | Binop (Ge, x, y) -> Binop (Lt, x, y)
    | a' -> Not a'
  end
  | Neg a -> begin
    match simplify a with
    | Const v -> Const (-v)
    | Neg b -> b
    | a' -> Neg a'
  end
  | Binop (op, a, b) -> simplify_binop op (simplify a) (simplify b)
  | Ite (c, a, b) -> begin
    match simplify c with
    | Const v -> if truthy v then simplify a else simplify b
    | c' ->
      let a' = simplify a and b' = simplify b in
      if equal a' b' then a' else Ite (c', a', b')
  end

(* [Not] distinguishes 0 from non-zero; double negation only collapses to the
   operand when the operand is known boolean-valued (0/1). *)
and simplify_bool e =
  match e with
  | Const v -> Const (if truthy v then 1 else 0)
  | Not _ | Binop ((Eq | Ne | Lt | Le | Gt | Ge | And | Or), _, _) -> e
  | Var v when Dom.equal v.dom Dom.bool -> e
  | Var _ | Neg _ | Binop _ | Ite _ -> Not (Not e)

and simplify_binop op a b =
  match op, a, b with
  | _, Const x, Const y -> Const (apply_binop op x y)
  | Add, e, Const 0 | Add, Const 0, e -> e
  | Sub, e, Const 0 -> e
  | Sub, e1, e2 when equal e1 e2 -> Const 0
  | Mul, _, Const 0 | Mul, Const 0, _ -> Const 0
  | Mul, e, Const 1 | Mul, Const 1, e -> e
  | Div, e, Const 1 -> e
  | Div, Const 0, _ -> Const 0
  | Mod, _, Const 1 -> Const 0
  | And, e, Const c | And, Const c, e ->
    if truthy c then simplify_bool e else Const 0
  | Or, e, Const c | Or, Const c, e ->
    if truthy c then Const 1 else simplify_bool e
  | And, e1, e2 when equal e1 e2 -> simplify_bool e1
  | Or, e1, e2 when equal e1 e2 -> simplify_bool e1
  | Eq, e1, e2 when equal e1 e2 -> Const 1
  | Ne, e1, e2 when equal e1 e2 -> Const 0
  | Le, e1, e2 when equal e1 e2 -> Const 1
  | Ge, e1, e2 when equal e1 e2 -> Const 1
  | Lt, e1, e2 when equal e1 e2 -> Const 0
  | Gt, e1, e2 when equal e1 e2 -> Const 0
  (* domain-based comparison folding: x cmp c decided by x's range *)
  | (Eq | Ne | Lt | Le | Gt | Ge), Var v, Const c -> fold_cmp op v c (Binop (op, a, b))
  | (Eq | Ne | Lt | Le | Gt | Ge), Const c, Var v ->
    fold_cmp (flip op) v c (Binop (op, a, b))
  | _, _, _ -> Binop (op, a, b)

and flip = function
  | Lt -> Gt
  | Le -> Ge
  | Gt -> Lt
  | Ge -> Le
  | (Eq | Ne | Add | Sub | Mul | Div | Mod | And | Or) as op -> op

and fold_cmp op v c keep =
  let lo = Dom.lo v.dom and hi = Dom.hi v.dom in
  let decided b = Const (if b then 1 else 0) in
  match op with
  | Eq -> if c < lo || c > hi then decided false else if lo = hi then decided (lo = c) else keep
  | Ne -> if c < lo || c > hi then decided true else if lo = hi then decided (lo <> c) else keep
  | Lt -> if hi < c then decided true else if lo >= c then decided false else keep
  | Le -> if hi <= c then decided true else if lo > c then decided false else keep
  | Gt -> if lo > c then decided true else if hi <= c then decided false else keep
  | Ge -> if lo >= c then decided true else if hi < c then decided false else keep
  | Add | Sub | Mul | Div | Mod | And | Or -> keep

let rec flatten_and e acc =
  match e with
  | Binop (And, a, b) -> flatten_and a (flatten_and b acc)
  | e -> e :: acc

let simplify_conj cs =
  let cs = List.concat_map (fun c -> flatten_and (simplify c) []) cs in
  (* a conjunct and its (normalized) negation make the whole conjunction
     false — catches complementary branch conditions over non-invertible
     shapes (e.g. [x*y > c] with [x*y <= c]) that interval propagation
     cannot decide *)
  let negation_of c = simplify (Not c) in
  let rec dedup seen = function
    | [] -> List.rev seen
    | c :: rest -> begin
      match c with
      | Const v when truthy v -> dedup seen rest
      | Const _ -> [ fls ]
      | c ->
        if List.exists (equal (negation_of c)) seen then [ fls ]
        else if List.exists (equal c) seen then dedup seen rest
        else dedup (c :: seen) rest
    end
  in
  dedup [] cs
