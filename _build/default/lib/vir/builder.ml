open Ast

let i n = Const n
let b v = Const (if v then 1 else 0)
let cfg name = Config name
let wl name = Workload name
let lv name = Local name
let gv name = Global name

let ( ==. ) a b = Binop (Vsmt.Expr.Eq, a, b)
let ( <>. ) a b = Binop (Vsmt.Expr.Ne, a, b)
let ( <. ) a b = Binop (Vsmt.Expr.Lt, a, b)
let ( <=. ) a b = Binop (Vsmt.Expr.Le, a, b)
let ( >. ) a b = Binop (Vsmt.Expr.Gt, a, b)
let ( >=. ) a b = Binop (Vsmt.Expr.Ge, a, b)
let ( &&. ) a b = Binop (Vsmt.Expr.And, a, b)
let ( ||. ) a b = Binop (Vsmt.Expr.Or, a, b)
let ( +. ) a b = Binop (Vsmt.Expr.Add, a, b)
let ( -. ) a b = Binop (Vsmt.Expr.Sub, a, b)
let ( *. ) a b = Binop (Vsmt.Expr.Mul, a, b)
let ( /. ) a b = Binop (Vsmt.Expr.Div, a, b)
let ( %. ) a b = Binop (Vsmt.Expr.Mod, a, b)
let not_ e = Not e
let ite c a b = Ite (c, a, b)

let set name e = Assign (Lv_local name, e)
let setg name e = Assign (Lv_global name, e)
let if_ c t e = If (c, t, e)
let when_ c t = If (c, t, [])
let while_ c body = While (c, body)
let call ?dest fn args = Call { dest; fn; args; ret_addr = 0 }
let ret e = Return (Some e)
let ret_void = Return None
let thread id = Thread id
let trace_on = Trace_on
let trace_off = Trace_off

let fsync = Prim (Fsync, [])
let pwrite bytes = Prim (Pwrite, [ bytes ])
let pread bytes = Prim (Pread, [ bytes ])
let buffered_write bytes = Prim (Buffered_write, [ bytes ])
let buffered_read bytes = Prim (Buffered_read, [ bytes ])
let mutex_lock = Prim (Mutex_lock, [])
let mutex_unlock = Prim (Mutex_unlock, [])
let cond_wait = Prim (Cond_wait, [])
let net_send bytes = Prim (Net_send, [ bytes ])
let net_recv bytes = Prim (Net_recv, [ bytes ])
let dns_lookup = Prim (Dns_lookup, [])
let malloc bytes = Prim (Malloc, [ bytes ])
let memcpy bytes = Prim (Memcpy, [ bytes ])
let compute units = Prim (Compute, [ units ])
let log_append bytes = Prim (Log_append, [ bytes ])
let cache_lookup = Prim (Cache_lookup, [])
let cache_store = Prim (Cache_store, [])
let page_fault = Prim (Page_fault, [])

let func name ?(params = []) body = { fname = name; params; kind = Defined body; addr = 0 }

let library name ~effect ?(cost = []) semantics =
  { fname = name; params = []; kind = Library { effect; semantics; cost }; addr = 0 }

let base_addr = 0x400000
let func_stride = 0x1000
let first_ret_offset = 0x10
let ret_stride = 0x8

let resolve_addresses funcs =
  List.mapi
    (fun idx f ->
      let addr = base_addr + (idx * func_stride) in
      match f.kind with
      | Library _ -> { f with addr }
      | Defined body ->
        let next_site = ref 0 in
        let rec fix_block block = List.map fix_stmt block
        and fix_stmt = function
          | Call { dest; fn; args; ret_addr = _ } ->
            let site = !next_site in
            incr next_site;
            Call { dest; fn; args; ret_addr = addr + first_ret_offset + (site * ret_stride) }
          | If (c, t, e) -> If (c, fix_block t, fix_block e)
          | While (c, b) -> While (c, fix_block b)
          | (Assign _ | Return _ | Prim _ | Thread _ | Trace_on | Trace_off) as s -> s
        in
        { f with addr; kind = Defined (fix_block body) })
    funcs

let program ~name ~entry ?(globals = []) funcs =
  let seen = Hashtbl.create 16 in
  List.iter
    (fun f ->
      if Hashtbl.mem seen f.fname then
        failwith (Printf.sprintf "program %s: duplicate function %s" name f.fname);
      Hashtbl.add seen f.fname ())
    funcs;
  if not (Hashtbl.mem seen entry) then
    failwith (Printf.sprintf "program %s: missing entry %s" name entry);
  let funcs = resolve_addresses funcs in
  let p = { pname = name; funcs; entry; globals } in
  (* validate call targets and count call sites per function *)
  List.iter
    (fun f ->
      iter_stmts
        (function
          | Call { fn; _ } ->
            if not (Hashtbl.mem seen fn) then
              failwith
                (Printf.sprintf "program %s: %s calls unknown function %s" name f.fname fn)
          | _ -> ())
        (func_body f);
      (* functions with > 500 call sites would overflow into the next
         function's address range and break call-path reconstruction *)
      let sites = ref 0 in
      iter_stmts (function Call _ -> incr sites | _ -> ()) (func_body f);
      if !sites * ret_stride + first_ret_offset >= func_stride then
        failwith (Printf.sprintf "program %s: %s has too many call sites" name f.fname))
    funcs;
  p
