type node = {
  id : int;
  stmt : Ast.stmt option;
  label : string;
  mutable succs : int list;
  mutable preds : int list;
}

type t = { func_name : string; nodes : node array; entry_id : int; exit_id : int }

let stmt_label = function
  | Ast.Assign (Ast.Lv_local n, _) -> n ^ " = ..."
  | Ast.Assign (Ast.Lv_global n, _) -> "g:" ^ n ^ " = ..."
  | Ast.If _ -> "if"
  | Ast.While _ -> "while"
  | Ast.Call { fn; _ } -> "call " ^ fn
  | Ast.Return _ -> "return"
  | Ast.Prim (p, _) -> Ast.prim_name p
  | Ast.Thread n -> Printf.sprintf "thread %d" n
  | Ast.Trace_on -> "trace_on"
  | Ast.Trace_off -> "trace_off"

let of_func (f : Ast.func) =
  let nodes = ref [] in
  let next_id = ref 0 in
  let fresh stmt label =
    let n = { id = !next_id; stmt; label; succs = []; preds = [] } in
    incr next_id;
    nodes := n :: !nodes;
    n
  in
  let entry = fresh None "entry" in
  let exit_node = fresh None "exit" in
  let edge a b =
    if not (List.mem b.id a.succs) then a.succs <- b.id :: a.succs;
    if not (List.mem a.id b.preds) then b.preds <- a.id :: b.preds
  in
  (* [go block preds] wires [preds] to the block's first node and returns the
     dangling exits of the block (empty when all paths return). *)
  let rec go block preds =
    List.fold_left
      (fun preds stmt ->
        match stmt with
        | Ast.If (_, t, e) ->
          let cond = fresh (Some stmt) "if" in
          List.iter (fun p -> edge p cond) preds;
          let t_exits = go t [ cond ] in
          let e_exits = go e [ cond ] in
          (* an empty branch falls through from the condition itself *)
          let t_exits = if t = [] then [ cond ] else t_exits in
          let e_exits = if e = [] then [ cond ] else e_exits in
          t_exits @ e_exits
        | Ast.While (_, body) ->
          let cond = fresh (Some stmt) "while" in
          List.iter (fun p -> edge p cond) preds;
          let body_exits = go body [ cond ] in
          List.iter (fun p -> edge p cond) body_exits;
          [ cond ]
        | Ast.Return _ ->
          let n = fresh (Some stmt) "return" in
          List.iter (fun p -> edge p n) preds;
          edge n exit_node;
          []
        | Ast.Assign _ | Ast.Call _ | Ast.Prim _ | Ast.Thread _ | Ast.Trace_on
        | Ast.Trace_off ->
          let n = fresh (Some stmt) (stmt_label stmt) in
          List.iter (fun p -> edge p n) preds;
          [ n ])
      preds block
  in
  let exits = go (Ast.func_body f) [ entry ] in
  List.iter (fun p -> edge p exit_node) exits;
  (* a function whose body is empty still flows entry -> exit *)
  if entry.succs = [] then edge entry exit_node;
  let arr = Array.make !next_id entry in
  List.iter (fun n -> arr.(n.id) <- n) !nodes;
  { func_name = f.fname; nodes = arr; entry_id = entry.id; exit_id = exit_node.id }

let node t id = t.nodes.(id)

let branch_nodes t =
  Array.to_list t.nodes
  |> List.filter (fun n -> match n.stmt with Some (Ast.If _ | Ast.While _) -> true | _ -> false)

let pp ppf t =
  Fmt.pf ppf "cfg %s:@." t.func_name;
  Array.iter
    (fun n -> Fmt.pf ppf "  %d [%s] -> %a@." n.id n.label Fmt.(list ~sep:comma int) n.succs)
    t.nodes
