lib/vir/cfg.mli: Ast Fmt
