lib/vir/builder.ml: Ast Hashtbl List Printf Vsmt
