lib/vir/callgraph.ml: Ast Hashtbl List String
