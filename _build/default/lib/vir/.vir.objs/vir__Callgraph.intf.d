lib/vir/callgraph.mli: Ast
