lib/vir/postdom.ml: Array Bytes Cfg Char List
