lib/vir/pretty.mli: Ast Fmt
