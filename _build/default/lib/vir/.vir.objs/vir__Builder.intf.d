lib/vir/builder.mli: Ast
