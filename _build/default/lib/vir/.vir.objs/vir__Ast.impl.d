lib/vir/ast.ml: Hashtbl List Printf String Vsmt
