lib/vir/pretty.ml: Ast Fmt List String Vsmt
