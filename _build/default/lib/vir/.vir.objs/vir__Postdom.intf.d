lib/vir/postdom.mli: Cfg
