lib/vir/ast.mli: Vsmt
