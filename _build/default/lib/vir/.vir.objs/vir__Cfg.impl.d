lib/vir/cfg.ml: Array Ast Fmt List Printf
