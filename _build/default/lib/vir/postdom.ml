(* Iterative bitset dataflow: pdom(exit) = {exit};
   pdom(n) = {n} ∪ ⋂ pdom(s) over successors s. *)

type t = { sets : Bytes.t array; n : int }

let bit_get b i = Char.code (Bytes.get b (i lsr 3)) land (1 lsl (i land 7)) <> 0

let bit_set b i =
  Bytes.set b (i lsr 3) (Char.chr (Char.code (Bytes.get b (i lsr 3)) lor (1 lsl (i land 7))))

let compute (cfg : Cfg.t) =
  let n = Array.length cfg.nodes in
  let bytes = (n + 7) / 8 in
  let full () = Bytes.make bytes '\xff' in
  let sets = Array.init n (fun _ -> full ()) in
  let exit_set = Bytes.make bytes '\x00' in
  bit_set exit_set cfg.exit_id;
  sets.(cfg.exit_id) <- exit_set;
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iter
      (fun (node : Cfg.node) ->
        if node.id <> cfg.exit_id then begin
          let acc = full () in
          let has_succ = node.succs <> [] in
          List.iter
            (fun s ->
              for k = 0 to bytes - 1 do
                Bytes.set acc k
                  (Char.chr (Char.code (Bytes.get acc k) land Char.code (Bytes.get sets.(s) k)))
              done)
            node.succs;
          (* unreachable-from-exit nodes keep the full set; that matches the
             convention that their postdominators are unconstrained *)
          let acc = if has_succ then acc else Bytes.make bytes '\x00' in
          bit_set acc node.id;
          if not (Bytes.equal acc sets.(node.id)) then begin
            sets.(node.id) <- acc;
            changed := true
          end
        end)
      cfg.nodes
  done;
  { sets; n }

let postdominates t b a = b < t.n && a < t.n && bit_get t.sets.(a) b

let postdominators t a =
  let acc = ref [] in
  for i = t.n - 1 downto 0 do
    if bit_get t.sets.(a) i then acc := i :: !acc
  done;
  !acc

let control_dependent t (cfg : Cfg.t) ~on y =
  let x_node = Cfg.node cfg on in
  List.exists (fun s -> postdominates t y s) x_node.succs && not (postdominates t y on)
