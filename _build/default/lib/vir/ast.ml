type prim =
  | Fsync
  | Pwrite
  | Pread
  | Buffered_write
  | Buffered_read
  | Mutex_lock
  | Mutex_unlock
  | Cond_wait
  | Net_send
  | Net_recv
  | Dns_lookup
  | Malloc
  | Memcpy
  | Compute
  | Log_append
  | Cache_lookup
  | Cache_store
  | Page_fault

type binop = Vsmt.Expr.binop

type expr =
  | Const of int
  | Config of string
  | Workload of string
  | Local of string
  | Global of string
  | Not of expr
  | Neg of expr
  | Binop of binop * expr * expr
  | Ite of expr * expr * expr

type lvalue = Lv_local of string | Lv_global of string

type stmt =
  | Assign of lvalue * expr
  | If of expr * block * block
  | While of expr * block
  | Call of { dest : string option; fn : string; args : expr list; ret_addr : int }
  | Return of expr option
  | Prim of prim * expr list
  | Thread of int
  | Trace_on
  | Trace_off

and block = stmt list

type lib_effect = Pure | Benign | Effectful

type fkind =
  | Defined of block
  | Library of { effect : lib_effect; semantics : int list -> int; cost : (prim * int) list }

type func = { fname : string; params : string list; kind : fkind; addr : int }

type program = {
  pname : string;
  funcs : func list;
  entry : string;
  globals : (string * int) list;
}

let find_func_opt p name = List.find_opt (fun f -> String.equal f.fname name) p.funcs

let find_func p name =
  match find_func_opt p name with
  | Some f -> f
  | None -> failwith (Printf.sprintf "program %s: unknown function %s" p.pname name)

let reads_of select e =
  let seen = Hashtbl.create 8 in
  let acc = ref [] in
  let add n =
    if not (Hashtbl.mem seen n) then begin
      Hashtbl.add seen n ();
      acc := n :: !acc
    end
  in
  let rec go e =
    begin
      match select e with Some n -> add n | None -> ()
    end;
    match e with
    | Const _ | Config _ | Workload _ | Local _ | Global _ -> ()
    | Not e | Neg e -> go e
    | Binop (_, a, b) -> go a; go b
    | Ite (c, a, b) -> go c; go a; go b
  in
  go e;
  List.rev !acc

let config_reads = reads_of (function Config n -> Some n | _ -> None)
let workload_reads = reads_of (function Workload n -> Some n | _ -> None)

let prim_name = function
  | Fsync -> "fsync"
  | Pwrite -> "pwrite"
  | Pread -> "pread"
  | Buffered_write -> "buffered_write"
  | Buffered_read -> "buffered_read"
  | Mutex_lock -> "mutex_lock"
  | Mutex_unlock -> "mutex_unlock"
  | Cond_wait -> "cond_wait"
  | Net_send -> "net_send"
  | Net_recv -> "net_recv"
  | Dns_lookup -> "dns_lookup"
  | Malloc -> "malloc"
  | Memcpy -> "memcpy"
  | Compute -> "compute"
  | Log_append -> "log_append"
  | Cache_lookup -> "cache_lookup"
  | Cache_store -> "cache_store"
  | Page_fault -> "page_fault"

let rec iter_stmts f block =
  List.iter
    (fun s ->
      f s;
      match s with
      | If (_, t, e) -> iter_stmts f t; iter_stmts f e
      | While (_, b) -> iter_stmts f b
      | Assign _ | Call _ | Return _ | Prim _ | Thread _ | Trace_on | Trace_off -> ())
    block

let func_body f = match f.kind with Defined b -> b | Library _ -> []
