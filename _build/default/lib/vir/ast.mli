(** The intermediate representation target-system models are written in.

    The paper applies Violet to C/C++ systems whose binaries S²E executes.
    Here the four target systems are modelled as programs in this small
    imperative IR; the symbolic executor, the concrete executor, and the
    static analyzer all consume it.  The IR keeps exactly the features
    Violet's reasoning needs:

    - reads of {e configuration} and {e workload} variables (the symbolic
      sources);
    - branches, loops, assignments, function calls (control flow for path
      exploration and control-dependency analysis);
    - {e cost primitives} — fsync, pwrite, mutex, DNS lookup, ... — the slow
      operations whose conditional execution is what makes a configuration
      specious (paper Section 2.3);
    - {e library calls} with a side-effect classification, driving the
      selective-concretization consistency model (Section 5.4).

    Functions carry synthetic start addresses and call sites carry synthetic
    return addresses, so the tracer can do the paper's return-address record
    matching and closest-enclosing-address call-path reconstruction
    literally (Section 4.5). *)

(** Cost-bearing primitive operations.  Magnitudes (bytes, units) come from
    the statement's argument expressions; see {!stmt}. *)
type prim =
  | Fsync  (** synchronous flush of OS-cached writes to disk *)
  | Pwrite  (** direct write, arg = bytes *)
  | Pread  (** direct read, arg = bytes *)
  | Buffered_write  (** write absorbed by the OS buffer cache, arg = bytes *)
  | Buffered_read  (** read served from the OS buffer cache, arg = bytes *)
  | Mutex_lock
  | Mutex_unlock
  | Cond_wait  (** blocking wait; decreases system concurrency *)
  | Net_send  (** arg = bytes *)
  | Net_recv  (** arg = bytes *)
  | Dns_lookup
  | Malloc  (** arg = bytes *)
  | Memcpy  (** arg = bytes *)
  | Compute  (** pure CPU work, arg = abstract units *)
  | Log_append  (** buffered log record append, arg = bytes *)
  | Cache_lookup
  | Cache_store
  | Page_fault

type binop = Vsmt.Expr.binop

type expr =
  | Const of int
  | Config of string  (** read a configuration parameter *)
  | Workload of string  (** read a workload-template (input) parameter *)
  | Local of string
  | Global of string
  | Not of expr
  | Neg of expr
  | Binop of binop * expr * expr
  | Ite of expr * expr * expr

type lvalue = Lv_local of string | Lv_global of string

type stmt =
  | Assign of lvalue * expr
  | If of expr * block * block
  | While of expr * block
  | Call of { dest : string option; fn : string; args : expr list; ret_addr : int }
      (** [ret_addr] is assigned by {!Builder.program}; 0 before resolution *)
  | Return of expr option
  | Prim of prim * expr list
  | Thread of int  (** subsequent signals carry this thread id *)
  | Trace_on  (** tracer start hook: the target finished initialization *)
  | Trace_off  (** tracer stop hook: the target enters shutdown *)

and block = stmt list

(** Side-effect classification of a library function, per the paper's
    relaxation rules (Section 5.4). *)
type lib_effect =
  | Pure  (** no side effect (strlen, strcmp): return becomes a fresh
              symbol and the concretization constraint is dropped *)
  | Benign  (** side effect that cannot hurt functionality (printf):
                concretization constraint dropped *)
  | Effectful  (** concretization constraint must be kept *)

type fkind =
  | Defined of block
  | Library of { effect : lib_effect; semantics : int list -> int; cost : (prim * int) list }

type func = { fname : string; params : string list; kind : fkind; addr : int }

type program = {
  pname : string;
  funcs : func list;
  entry : string;
  globals : (string * int) list;  (** initial values *)
}

val find_func : program -> string -> func
(** Raises [Not_found] with a descriptive [Failure] when absent. *)

val find_func_opt : program -> string -> func option

val config_reads : expr -> string list
(** Configuration parameters read by an expression, in first-occurrence
    order, without duplicates. *)

val workload_reads : expr -> string list
val prim_name : prim -> string

val iter_stmts : (stmt -> unit) -> block -> unit
(** Pre-order traversal of a block including nested blocks. *)

val func_body : func -> block
(** Body of a defined function; [[]] for library functions. *)
