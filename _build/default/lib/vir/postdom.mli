(** Postdominator analysis on a {!Cfg}.

    Node [b] postdominates node [a] when every path from [a] to the exit node
    passes through [b].  Postdominators are the building block of the classic
    control-dependency definition the paper starts from (Section 4.3). *)

type t

val compute : Cfg.t -> t

val postdominates : t -> int -> int -> bool
(** [postdominates t b a] is true when node [b] postdominates node [a]. *)

val postdominators : t -> int -> int list
(** Sorted ids of the nodes postdominating the given node (includes itself). *)

val control_dependent : t -> Cfg.t -> on:int -> int -> bool
(** Classic (Ferrante–Ottenstein–Warren) control dependency: [y] is control
    dependent on branch [x] iff [y] postdominates some successor of [x] but
    does not postdominate [x]. *)
