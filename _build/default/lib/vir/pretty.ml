open Ast

let binop_str op = Vsmt.Expr.(
  match op with
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Mod -> "%"
  | Eq -> "=="
  | Ne -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | And -> "&&"
  | Or -> "||")

let rec pp_expr ppf = function
  | Const v -> Fmt.int ppf v
  | Config n -> Fmt.pf ppf "cfg:%s" n
  | Workload n -> Fmt.pf ppf "wl:%s" n
  | Local n -> Fmt.string ppf n
  | Global n -> Fmt.pf ppf "g:%s" n
  | Not e -> Fmt.pf ppf "!(%a)" pp_expr e
  | Neg e -> Fmt.pf ppf "-(%a)" pp_expr e
  | Binop (op, a, b) -> Fmt.pf ppf "(%a %s %a)" pp_expr a (binop_str op) pp_expr b
  | Ite (c, a, b) -> Fmt.pf ppf "(%a ? %a : %a)" pp_expr c pp_expr a pp_expr b

let rec pp_stmt_indent indent ppf stmt =
  let pad = String.make indent ' ' in
  match stmt with
  | Assign (Lv_local n, e) -> Fmt.pf ppf "%s%s = %a;" pad n pp_expr e
  | Assign (Lv_global n, e) -> Fmt.pf ppf "%sg:%s = %a;" pad n pp_expr e
  | If (c, t, e) ->
    Fmt.pf ppf "%sif (%a) {@.%a%s}" pad pp_expr c (pp_block (indent + 2)) t pad;
    if e <> [] then Fmt.pf ppf " else {@.%a%s}" (pp_block (indent + 2)) e pad
  | While (c, b) -> Fmt.pf ppf "%swhile (%a) {@.%a%s}" pad pp_expr c (pp_block (indent + 2)) b pad
  | Call { dest; fn; args; ret_addr } ->
    let dst = match dest with Some d -> d ^ " = " | None -> "" in
    Fmt.pf ppf "%s%s%s(%a); /* ret=0x%x */" pad dst fn Fmt.(list ~sep:comma pp_expr) args ret_addr
  | Return (Some e) -> Fmt.pf ppf "%sreturn %a;" pad pp_expr e
  | Return None -> Fmt.pf ppf "%sreturn;" pad
  | Prim (p, args) -> Fmt.pf ppf "%s@@%s(%a);" pad (prim_name p) Fmt.(list ~sep:comma pp_expr) args
  | Thread n -> Fmt.pf ppf "%s@@thread(%d);" pad n
  | Trace_on -> Fmt.pf ppf "%s@@trace_on;" pad
  | Trace_off -> Fmt.pf ppf "%s@@trace_off;" pad

and pp_block indent ppf block =
  List.iter (fun s -> Fmt.pf ppf "%a@." (pp_stmt_indent indent) s) block

let pp_stmt ppf s = pp_stmt_indent 0 ppf s

let pp_func ppf (f : func) =
  match f.kind with
  | Defined body ->
    Fmt.pf ppf "func %s(%a) /* 0x%x */ {@.%a}@." f.fname
      Fmt.(list ~sep:comma string)
      f.params f.addr (pp_block 2) body
  | Library { effect; _ } ->
    let eff =
      match effect with Pure -> "pure" | Benign -> "benign" | Effectful -> "effectful"
    in
    Fmt.pf ppf "extern %s(...) /* 0x%x, %s */@." f.fname f.addr eff

let pp_program ppf (p : program) =
  Fmt.pf ppf "program %s (entry %s)@." p.pname p.entry;
  List.iter (fun (g, v) -> Fmt.pf ppf "global %s = %d@." g v) p.globals;
  List.iter (pp_func ppf) p.funcs

let expr_to_string e = Fmt.str "%a" pp_expr e
