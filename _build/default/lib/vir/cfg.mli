(** Per-function control-flow graphs.

    Used by the classic (postdominator-based) control-dependency analysis.
    Each statement of a defined function becomes one node; [If]/[While]
    conditions are branch nodes with two successors.  Synthetic entry and
    exit nodes bracket the function. *)

type node = {
  id : int;
  stmt : Ast.stmt option;  (** [None] for the synthetic entry/exit *)
  label : string;
  mutable succs : int list;
  mutable preds : int list;
}

type t = { func_name : string; nodes : node array; entry_id : int; exit_id : int }

val of_func : Ast.func -> t
(** CFG of a defined function; library functions yield entry→exit only. *)

val node : t -> int -> node
val branch_nodes : t -> node list
(** Nodes whose statement is an [If] or [While] (two successors). *)

val pp : t Fmt.t
