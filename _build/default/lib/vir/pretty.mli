(** Human-readable rendering of IR programs, for reports and debugging. *)

val pp_expr : Ast.expr Fmt.t
val pp_stmt : Ast.stmt Fmt.t
val pp_func : Ast.func Fmt.t
val pp_program : Ast.program Fmt.t
val expr_to_string : Ast.expr -> string
