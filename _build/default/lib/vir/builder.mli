(** Combinator DSL for writing target-system models in the IR.

    Intended to be locally opened:
    {[
      let open Vir.Builder in
      func "write_row"
        [
          if_ (cfg "autocommit" ==. i 1) [ call "trx_commit_complete" [] ] [];
          ret_void;
        ]
    ]}

    {!program} resolves synthetic function start addresses and call-site
    return addresses (needed by the tracer's record matching) and checks that
    every called function exists. *)

open Ast

val i : int -> expr
val b : bool -> expr
val cfg : string -> expr
val wl : string -> expr
val lv : string -> expr
val gv : string -> expr

val ( ==. ) : expr -> expr -> expr
val ( <>. ) : expr -> expr -> expr
val ( <. ) : expr -> expr -> expr
val ( <=. ) : expr -> expr -> expr
val ( >. ) : expr -> expr -> expr
val ( >=. ) : expr -> expr -> expr
val ( &&. ) : expr -> expr -> expr
val ( ||. ) : expr -> expr -> expr
val ( +. ) : expr -> expr -> expr
val ( -. ) : expr -> expr -> expr
val ( *. ) : expr -> expr -> expr
val ( /. ) : expr -> expr -> expr
val ( %. ) : expr -> expr -> expr
val not_ : expr -> expr
val ite : expr -> expr -> expr -> expr

val set : string -> expr -> stmt
(** Assign to a local. *)

val setg : string -> expr -> stmt
(** Assign to a global. *)

val if_ : expr -> block -> block -> stmt
val when_ : expr -> block -> stmt
(** [if_] with an empty else branch. *)

val while_ : expr -> block -> stmt
val call : ?dest:string -> string -> expr list -> stmt
val ret : expr -> stmt
val ret_void : stmt
val thread : int -> stmt
val trace_on : stmt
val trace_off : stmt

(** Cost primitives. *)

val fsync : stmt
val pwrite : expr -> stmt
val pread : expr -> stmt
val buffered_write : expr -> stmt
val buffered_read : expr -> stmt
val mutex_lock : stmt
val mutex_unlock : stmt
val cond_wait : stmt
val net_send : expr -> stmt
val net_recv : expr -> stmt
val dns_lookup : stmt
val malloc : expr -> stmt
val memcpy : expr -> stmt
val compute : expr -> stmt
val log_append : expr -> stmt
val cache_lookup : stmt
val cache_store : stmt
val page_fault : stmt

val func : string -> ?params:string list -> block -> func
val library :
  string -> effect:lib_effect -> ?cost:(prim * int) list -> (int list -> int) -> func

val program :
  name:string -> entry:string -> ?globals:(string * int) list -> func list -> program
(** Assign addresses (function [i] starts at [0x400000 + i * 0x1000]; the
    [k]-th call site of a function returns to [start + 0x10 + k * 0x8]) and
    validate that every callee is defined.  Raises [Failure] on an unknown
    callee or duplicate function name. *)
