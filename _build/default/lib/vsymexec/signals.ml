type kind = Call of { eip : int; ret_addr : int } | Ret of { ret_addr : int }

type record = { kind : kind; fname : string; ts : float; thread : int; cid : int }

let is_call r = match r.kind with Call _ -> true | Ret _ -> false

let pp ppf r =
  match r.kind with
  | Call { eip; ret_addr } ->
    Fmt.pf ppf "call %s eip=0x%x ret=0x%x ts=%.1f thr=%d cid=%d" r.fname eip ret_addr r.ts
      r.thread r.cid
  | Ret { ret_addr } ->
    Fmt.pf ppf "ret  %s ret=0x%x ts=%.1f thr=%d cid=%d" r.fname ret_addr r.ts r.thread r.cid
