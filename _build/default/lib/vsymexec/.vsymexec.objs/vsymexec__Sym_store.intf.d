lib/vsymexec/sym_store.mli: Vsmt
