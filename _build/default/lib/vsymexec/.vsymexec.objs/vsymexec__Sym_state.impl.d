lib/vsymexec/sym_state.ml: Fmt List Signals Sym_store Vir Vruntime Vsmt
