lib/vsymexec/sym_store.ml: List Map String Vsmt
