lib/vsymexec/signals.mli: Fmt
