lib/vsymexec/executor.mli: Sym_state Vir Vruntime Vsmt
