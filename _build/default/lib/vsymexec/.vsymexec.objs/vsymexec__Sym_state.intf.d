lib/vsymexec/sym_state.mli: Fmt Signals Sym_store Vir Vruntime Vsmt
