lib/vsymexec/signals.ml: Fmt
