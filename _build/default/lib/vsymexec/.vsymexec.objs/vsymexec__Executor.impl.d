lib/vsymexec/executor.ml: List Option Printf Random Signals String Sym_state Sym_store Unix Vir Vruntime Vsmt
