(** Low-level call/return signals emitted during symbolic execution.

    The Violet tracer is built on the call and return signals the engine
    emits (S²E's FunctionMonitor in the paper).  Each record stores only
    register-level facts — the callee start address (EIP), the return
    address, a timestamp, the thread id and an incrementing [cid] — and the
    expensive work (matching, latency, call-path reconstruction) is deferred
    to path termination (Section 5.3, optimization 2).

    [fname] carries the function name for test oracles and reports; the
    matching and reconstruction algorithms in {!Vtrace} use only addresses,
    exactly as the paper's tracer does (it resolves names offline via the
    load bias). *)

type kind =
  | Call of { eip : int; ret_addr : int }
      (** [eip] is the callee's start address *)
  | Ret of { ret_addr : int }

type record = { kind : kind; fname : string; ts : float; thread : int; cid : int }

val is_call : record -> bool
val pp : record Fmt.t
