(** Call/return record matching (paper Figure 11, Section 4.5).

    A naive stack-based pairing assumes call/return signals are well nested
    and that a callee's return signal arrives before its caller's; the paper
    observed S²E violating that, so the tracer instead stores call and
    return records in two lists and matches them afterwards by the
    {e return address} field, partitioned by thread id.  The latency of a
    matched pair is the return timestamp minus the call timestamp. *)

type entry = {
  call : Vsymexec.Signals.record;
  ret : Vsymexec.Signals.record option;  (** [None]: no matching return *)
  latency_us : float option;
}

val match_records : Vsymexec.Signals.record list -> entry list
(** Input in emission order (possibly several threads interleaved); output
    in call-record order.  Within a thread, a return record matches the most
    recent unmatched call record carrying the same return address. *)

val threads : Vsymexec.Signals.record list -> int list
