(** Per-state performance profiles.

    One profile per explored path: the path constraints (split into the
    configuration constraint and the input predicate), the cost vector, the
    root latency measured from the tracer's matched signals, and the
    reconstructed call tree.  The trace analyzer ({!Vmodel}) consumes
    profiles to build the cost table. *)

type t = {
  state_id : int;
  status : Vsymexec.Sym_state.status;
  pc : Vsmt.Expr.t list;
  config_constraints : Vsmt.Expr.t list;
  workload_constraints : Vsmt.Expr.t list;
  cost : Vruntime.Cost.t;
  traced_latency_us : float;
      (** root-call latency from the matched signal records — the inflated
          symbolic-execution clock, what the paper's tracer measures *)
  nodes : Callpath.node list;
}

val make :
  state_id:int ->
  status:Vsymexec.Sym_state.status ->
  pc:Vsmt.Expr.t list ->
  cost:Vruntime.Cost.t ->
  clock:float ->
  records:Vsymexec.Signals.record list ->
  t
(** Build a profile from raw trace material (used for traces loaded from
    disk as well as live states). *)

val of_state : Vsymexec.Sym_state.t -> t
(** Deferred computation (Section 5.3, optimization 2): record matching,
    latency calculation and call-path reconstruction happen here, at path
    termination, not during execution. *)

val of_result : Vsymexec.Executor.result -> t list
(** Profiles of all terminated states (killed states are skipped — they
    have no complete path). *)

val per_function_latency : t -> (string * float) list
(** Inclusive traced latency per function name, descending. *)

val pp : t Fmt.t
