module Sig = Vsymexec.Signals

type entry = { call : Sig.record; ret : Sig.record option; latency_us : float option }

let threads records =
  List.sort_uniq Int.compare (List.map (fun (r : Sig.record) -> r.Sig.thread) records)

let match_thread records =
  (* [pending] holds unmatched call records, most recent first *)
  let pending = ref [] and matched = ref [] in
  List.iter
    (fun (r : Sig.record) ->
      match r.Sig.kind with
      | Sig.Call _ -> pending := r :: !pending
      | Sig.Ret { ret_addr } -> begin
        let rec take acc = function
          | [] -> None
          | (c : Sig.record) :: rest -> begin
            match c.Sig.kind with
            | Sig.Call { ret_addr = ra; _ } when ra = ret_addr ->
              Some (c, List.rev_append acc rest)
            | Sig.Call _ | Sig.Ret _ -> take (c :: acc) rest
          end
        in
        match take [] !pending with
        | Some (c, rest) ->
          pending := rest;
          matched :=
            { call = c; ret = Some r; latency_us = Some (r.Sig.ts -. c.Sig.ts) } :: !matched
        | None -> ()  (* spurious return: dropped, like the paper's tracer *)
      end)
    records;
  let unmatched = List.map (fun c -> { call = c; ret = None; latency_us = None }) !pending in
  !matched @ unmatched

let match_records records =
  let by_thread = Hashtbl.create 4 in
  List.iter
    (fun (r : Sig.record) ->
      let cur = match Hashtbl.find_opt by_thread r.Sig.thread with Some l -> l | None -> [] in
      Hashtbl.replace by_thread r.Sig.thread (r :: cur))
    records;
  let entries =
    Hashtbl.fold
      (fun _thread recs acc -> match_thread (List.rev recs) @ acc)
      by_thread []
  in
  List.sort (fun a b -> Int.compare a.call.Sig.cid b.call.Sig.cid) entries
