module Sig = Vsymexec.Signals

type node = {
  cid : int;
  fname : string;
  eip : int;
  ret_addr : int;
  ts : float;
  thread : int;
  latency_us : float;
  parent : int option;
}

let node_of_entry (e : Record_match.entry) =
  let call = e.Record_match.call in
  let eip, ret_addr =
    match call.Sig.kind with
    | Sig.Call { eip; ret_addr } -> eip, ret_addr
    | Sig.Ret _ -> invalid_arg "Callpath: entry whose call record is a return"
  in
  {
    cid = call.Sig.cid;
    fname = call.Sig.fname;
    eip;
    ret_addr;
    ts = call.Sig.ts;
    thread = call.Sig.thread;
    latency_us = (match e.Record_match.latency_us with Some l -> l | None -> 0.);
    parent = None;
  }

let reconstruct entries =
  let nodes = List.map node_of_entry entries in
  let nodes = List.sort (fun a b -> Int.compare a.cid b.cid) nodes in
  let arr = Array.of_list nodes in
  Array.iteri
    (fun i a ->
      (* iterate candidates in cid order, keeping the smallest distance;
         later candidates win ties ("update the current distance") *)
      let best = ref None and best_dist = ref max_int in
      for j = 0 to i - 1 do
        let b = arr.(j) in
        if b.thread = a.thread && b.eip < a.ret_addr then begin
          let dist = a.ret_addr - b.eip in
          if dist <= !best_dist then begin
            best := Some b.cid;
            best_dist := dist
          end
        end
      done;
      arr.(i) <- { a with parent = !best })
    arr;
  Array.to_list arr

let roots nodes = List.filter (fun n -> n.parent = None) nodes
let children nodes cid = List.filter (fun n -> n.parent = Some cid) nodes
let find nodes cid = List.find_opt (fun n -> n.cid = cid) nodes
let chain_names nodes = List.map (fun n -> n.fname) nodes

let exclusive_latency nodes n =
  let child_sum =
    List.fold_left (fun acc c -> acc +. c.latency_us) 0. (children nodes n.cid)
  in
  Float.max 0. (n.latency_us -. child_sum)

let depth_of nodes n =
  let rec go depth cid =
    match find nodes cid with
    | Some { parent = Some p; _ } when depth < 256 -> go (depth + 1) p
    | _ -> depth
  in
  match n.parent with None -> 0 | Some p -> go 1 p

let pp_tree ppf nodes =
  let rec pp_node indent n =
    Fmt.pf ppf "%s%s (cid=%d, %.1f us)@." (String.make indent ' ') n.fname n.cid n.latency_us;
    List.iter (pp_node (indent + 2)) (children nodes n.cid)
  in
  List.iter (pp_node 0) (roots nodes)
