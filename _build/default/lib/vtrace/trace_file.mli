(** On-disk execution traces.

    In the paper the tracer (an S²E plugin) writes its records to a trace
    file during state exploration, and the trace analyzer is a standalone
    tool that parses it (Figure 6).  This module provides that boundary: a
    dump of every terminated state — its path constraints (config and
    workload split), cost vector, virtual clock, and raw call/return signal
    records — in a line-oriented s-expression format.

    Names are resolved at analysis time in the paper (via the load bias);
    here the records carry names already, but the matching algorithms keep
    using only addresses. *)

type state_trace = {
  state_id : int;
  pc : Vsmt.Expr.t list;
  cost : Vruntime.Cost.t;
  clock : float;
  records : Vsymexec.Signals.record list;
}

val of_state : Vsymexec.Sym_state.t -> state_trace
(** Snapshot a terminated state. *)

val of_result : Vsymexec.Executor.result -> state_trace list

val profile_of_state_trace : state_trace -> Profile.t
(** Run the deferred analysis (matching, call paths) on a loaded trace. *)

val save : state_trace list -> string -> unit
val load : string -> (state_trace list, string) result
val to_string : state_trace list -> string
val of_string : string -> (state_trace list, string) result
