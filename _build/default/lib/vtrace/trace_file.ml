module Sexp = Vsmt.Sexp
module Serial = Vsmt.Serial
module Sig = Vsymexec.Signals
module S = Vsymexec.Sym_state

type state_trace = {
  state_id : int;
  pc : Vsmt.Expr.t list;
  cost : Vruntime.Cost.t;
  clock : float;
  records : Sig.record list;
}

let of_state (st : S.t) =
  {
    state_id = st.S.id;
    pc = st.S.pc;
    cost = st.S.cost;
    clock = st.S.clock;
    records = S.signals_in_order st;
  }

let of_result (r : Vsymexec.Executor.result) =
  List.filter_map
    (fun (st : S.t) ->
      match st.S.status with
      | S.Terminated _ -> Some (of_state st)
      | S.Killed _ | S.Running -> None)
    r.Vsymexec.Executor.states

let profile_of_state_trace t =
  Profile.make ~state_id:t.state_id ~status:(S.Terminated None) ~pc:t.pc ~cost:t.cost
    ~clock:t.clock ~records:t.records

(* ------------------------------------------------------------------ *)
(* Serialization                                                       *)
(* ------------------------------------------------------------------ *)

let ( let* ) = Result.bind

let record_to_sexp (r : Sig.record) =
  match r.Sig.kind with
  | Sig.Call { eip; ret_addr } ->
    Sexp.list
      [ Sexp.atom "call"; Sexp.int eip; Sexp.int ret_addr; Sexp.atom r.Sig.fname;
        Sexp.float r.Sig.ts; Sexp.int r.Sig.thread; Sexp.int r.Sig.cid ]
  | Sig.Ret { ret_addr } ->
    Sexp.list
      [ Sexp.atom "ret"; Sexp.int ret_addr; Sexp.atom r.Sig.fname; Sexp.float r.Sig.ts;
        Sexp.int r.Sig.thread; Sexp.int r.Sig.cid ]

let record_of_sexp = function
  | Sexp.List [ Sexp.Atom "call"; eip; ra; Sexp.Atom fname; ts; thread; cid ] -> begin
    match Sexp.to_int eip, Sexp.to_int ra, Sexp.to_float ts, Sexp.to_int thread, Sexp.to_int cid
    with
    | Some eip, Some ret_addr, Some ts, Some thread, Some cid ->
      Ok { Sig.kind = Sig.Call { eip; ret_addr }; fname; ts; thread; cid }
    | _ -> Error "trace: malformed call record"
  end
  | Sexp.List [ Sexp.Atom "ret"; ra; Sexp.Atom fname; ts; thread; cid ] -> begin
    match Sexp.to_int ra, Sexp.to_float ts, Sexp.to_int thread, Sexp.to_int cid with
    | Some ret_addr, Some ts, Some thread, Some cid ->
      Ok { Sig.kind = Sig.Ret { ret_addr }; fname; ts; thread; cid }
    | _ -> Error "trace: malformed ret record"
  end
  | s -> Error ("trace: unrecognized record " ^ Sexp.to_string s)

let cost_to_sexp (c : Vruntime.Cost.t) =
  Sexp.list
    (List.map
       (fun name -> Sexp.float (Vruntime.Cost.metric c name))
       Vruntime.Cost.metric_names)

let cost_of_sexp = function
  | Sexp.List items when List.length items = List.length Vruntime.Cost.metric_names -> begin
    match List.map Sexp.to_float items with
    | [ Some latency_us; Some insn; Some sys; Some ioc; Some iob; Some sync; Some net;
        Some alloc; Some cache ] ->
      Ok
        {
          Vruntime.Cost.latency_us;
          instructions = int_of_float insn;
          syscalls = int_of_float sys;
          io_calls = int_of_float ioc;
          io_bytes = int_of_float iob;
          sync_ops = int_of_float sync;
          net_ops = int_of_float net;
          allocations = int_of_float alloc;
          cache_ops = int_of_float cache;
        }
    | _ -> Error "trace: malformed cost"
  end
  | s -> Error ("trace: unrecognized cost " ^ Sexp.to_string s)

let state_to_sexp t =
  Sexp.list
    [
      Sexp.atom "state";
      Sexp.int t.state_id;
      Sexp.list (List.map Serial.expr_to_sexp t.pc);
      cost_to_sexp t.cost;
      Sexp.float t.clock;
      Sexp.list (List.map record_to_sexp t.records);
    ]

let state_of_sexp = function
  | Sexp.List [ Sexp.Atom "state"; id; Sexp.List pc; cost; clock; Sexp.List records ] -> begin
    match Sexp.to_int id, Sexp.to_float clock with
    | Some state_id, Some clock ->
      let* pc =
        List.fold_left
          (fun acc s ->
            let* acc = acc in
            let* e = Serial.expr_of_sexp s in
            Ok (acc @ [ e ]))
          (Ok []) pc
      in
      let* cost = cost_of_sexp cost in
      let* records =
        List.fold_left
          (fun acc s ->
            let* acc = acc in
            let* r = record_of_sexp s in
            Ok (acc @ [ r ]))
          (Ok []) records
      in
      Ok { state_id; pc; cost; clock; records }
    | _ -> Error "trace: malformed state header"
  end
  | s -> Error ("trace: unrecognized state " ^ Sexp.to_string s)

let to_string traces =
  String.concat "\n" (List.map (fun t -> Sexp.to_string (state_to_sexp t)) traces)

let of_string text =
  let lines = String.split_on_char '\n' text in
  List.fold_left
    (fun acc line ->
      let* acc = acc in
      if String.trim line = "" then Ok acc
      else
        let* sexp = Sexp.of_string line in
        let* t = state_of_sexp sexp in
        Ok (acc @ [ t ]))
    (Ok []) lines

let save traces path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
      output_string oc (to_string traces))

let load path =
  match open_in path with
  | exception Sys_error msg -> Error msg
  | ic ->
    let content =
      Fun.protect ~finally:(fun () -> close_in ic) (fun () ->
          really_input_string ic (in_channel_length ic))
    in
    of_string content
