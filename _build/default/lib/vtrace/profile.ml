module S = Vsymexec.Sym_state

type t = {
  state_id : int;
  status : S.status;
  pc : Vsmt.Expr.t list;
  config_constraints : Vsmt.Expr.t list;
  workload_constraints : Vsmt.Expr.t list;
  cost : Vruntime.Cost.t;
  traced_latency_us : float;
  nodes : Callpath.node list;
}

let mentions_origin origin e =
  List.exists (fun (v : Vsmt.Expr.var) -> v.Vsmt.Expr.origin = origin) (Vsmt.Expr.vars e)

let make ~state_id ~status ~pc ~cost ~clock ~records =
  let entries = Record_match.match_records records in
  let nodes = Callpath.reconstruct entries in
  let traced_latency_us =
    match Callpath.roots nodes with
    | root :: _ -> root.Callpath.latency_us
    | [] -> clock
  in
  {
    state_id;
    status;
    pc;
    config_constraints = List.filter (mentions_origin Vsmt.Expr.Config) pc;
    workload_constraints =
      List.filter
        (fun e ->
          let vs = Vsmt.Expr.vars e in
          vs <> []
          && List.for_all
               (fun (v : Vsmt.Expr.var) -> v.Vsmt.Expr.origin = Vsmt.Expr.Workload)
               vs)
        pc;
    cost;
    traced_latency_us;
    nodes;
  }

let of_state (st : S.t) =
  make ~state_id:st.S.id ~status:st.S.status ~pc:st.S.pc ~cost:st.S.cost ~clock:st.S.clock
    ~records:(S.signals_in_order st)

let of_result (r : Vsymexec.Executor.result) =
  List.filter_map
    (fun (st : S.t) ->
      match st.S.status with
      | S.Terminated _ -> Some (of_state st)
      | S.Killed _ | S.Running -> None)
    r.Vsymexec.Executor.states

let per_function_latency t =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (n : Callpath.node) ->
      let cur = match Hashtbl.find_opt tbl n.Callpath.fname with Some x -> x | None -> 0. in
      Hashtbl.replace tbl n.Callpath.fname (cur +. n.Callpath.latency_us))
    t.nodes;
  Hashtbl.fold (fun f l acc -> (f, l) :: acc) tbl []
  |> List.sort (fun (_, a) (_, b) -> Float.compare b a)

let pp ppf t =
  Fmt.pf ppf "state %d [%a]: %a, traced %.1f us@.  config: %a@.  input: %a@." t.state_id
    S.pp_status t.status Vruntime.Cost.pp t.cost t.traced_latency_us
    Fmt.(list ~sep:(any " && ") Vsmt.Expr.pp_friendly)
    t.config_constraints
    Fmt.(list ~sep:(any " && ") Vsmt.Expr.pp_friendly)
    t.workload_constraints
