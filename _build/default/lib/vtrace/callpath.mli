(** Call-path reconstruction from matched records (paper Section 4.5).

    Instead of walking stack frames, the tracer assigns each call record an
    incrementing [cid] and reconstructs the chain offline: record [A]'s
    parent is the call record [B] with the largest [cid] such that
    [B.cid < A.cid], [B.eip < A.ret_addr] (the return address lies inside
    [B]'s function), and [A.ret_addr - B.eip] is smallest among candidates. *)

type node = {
  cid : int;
  fname : string;
  eip : int;
  ret_addr : int;
  ts : float;
  thread : int;
  latency_us : float;  (** 0 for unmatched calls *)
  parent : int option;  (** parent's cid *)
}

val reconstruct : Record_match.entry list -> node list
(** Nodes in [cid] order with parent links assigned. *)

val roots : node list -> node list
val children : node list -> int -> node list
val find : node list -> int -> node option
val chain_names : node list -> string list
(** Function-name sequence in [cid] order — the input to the differential
    critical path's longest-common-subsequence. *)

val exclusive_latency : node list -> node -> float
(** The node's latency minus its direct children's — the cost of the
    function's own code, which is what differential analysis attributes. *)

val depth_of : node list -> node -> int
val pp_tree : node list Fmt.t
