lib/vtrace/profile.mli: Callpath Fmt Vruntime Vsmt Vsymexec
