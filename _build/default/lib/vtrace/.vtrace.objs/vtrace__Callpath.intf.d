lib/vtrace/callpath.mli: Fmt Record_match
