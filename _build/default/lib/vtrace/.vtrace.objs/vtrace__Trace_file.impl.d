lib/vtrace/trace_file.ml: Fun List Profile Result String Vruntime Vsmt Vsymexec
