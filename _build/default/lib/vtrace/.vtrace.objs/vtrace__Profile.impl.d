lib/vtrace/profile.ml: Callpath Float Fmt Hashtbl List Record_match Vruntime Vsmt Vsymexec
