lib/vtrace/record_match.mli: Vsymexec
