lib/vtrace/callpath.ml: Array Float Fmt Int List Record_match String Vsymexec
