lib/vtrace/trace_file.mli: Profile Vruntime Vsmt Vsymexec
