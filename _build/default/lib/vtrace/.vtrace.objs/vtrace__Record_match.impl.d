lib/vtrace/record_match.ml: Hashtbl Int List Vsymexec
