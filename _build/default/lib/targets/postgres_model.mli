(** Executable performance model of PostgreSQL 11 (paper Section 7).

    Covers the paper's PostgreSQL known cases — [wal_sync_method] (c7),
    [archive_mode] (c8), [max_wal_size] (c9),
    [checkpoint_completion_target] (c10), [bgwriter_lru_multiplier] (c11) —
    and the five unknown-specious parameters of Table 5:
    [vacuum_cost_delay], [archive_timeout], [random_page_cost],
    [log_statement] (with [synchronous_commit]), and
    [parallel_leader_participation] (with [random_page_cost]).

    Float-typed parameters use the paper's discrete-choice encoding
    (Section 8). *)

val registry : Vruntime.Config_registry.t
val pgbench : Vruntime.Workload.template
val program : Vir.Ast.program
val target : Violet.Pipeline.target
val query_entry : string
val standard_workloads : (string * (Vruntime.Workload.instance * float) list) list
val validation_workloads : (string * (Vruntime.Workload.instance * float) list) list
