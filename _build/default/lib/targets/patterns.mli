(** The paper's four specious-configuration code patterns (Section 2.3), as
    minimal executable demonstrations.

    1. the parameter causes an expensive operation (fsync) to execute;
    2. the parameter adds synchronization that shrinks concurrency;
    3. the parameter steers execution onto a slow path (cache bypass);
    4. the parameter makes a threshold cross frequently, triggering a
       costly operation.

    Each pattern is a self-contained target whose analysis must mark the
    pattern's poor value; used by documentation, tests and the pattern
    bench. *)

type pattern = {
  id : int;
  name : string;
  description : string;
  target : Violet.Pipeline.target;
  param : string;  (** the specious parameter *)
  poor : (string * string) list;
  expected_trigger : string;
      (** substring expected in the dominant trigger label, e.g. "Lat." *)
}

val expensive_operation : pattern
val extra_synchronization : pattern
val slow_path : pattern
val threshold_crossing : pattern
val all : pattern list
