module Reg = Vruntime.Config_registry
module Wl = Vruntime.Workload

(* ------------------------------------------------------------------ *)
(* Configuration registry                                              *)
(* ------------------------------------------------------------------ *)

let mb n = n * 1024 * 1024
let kb n = n * 1024

let registry =
  Reg.(
    make ~system:"mysql"
      [
        (* --- transaction / durability --- *)
        param_bool "autocommit" ~default:true
          "commit implicitly after every statement";
        param_int "innodb_flush_log_at_trx_commit" ~lo:0 ~hi:2 ~default:1
          "redo-log flush policy at commit (0 none, 1 flush+fsync, 2 flush)";
        param_int "sync_binlog" ~lo:0 ~hi:4096 ~default:0
          "fsync the binary log every N commits (0 = rely on the OS)";
        param_enum "binlog_format" ~values:[ "ROW"; "STATEMENT"; "MIXED" ] ~default:"ROW"
          "binary-log event format";
        param_bool "sql_log_bin" ~default:true "write the session's binary log";
        param_bool "innodb_doublewrite" ~default:true "doublewrite buffer for torn pages";
        param_enum "innodb_flush_method" ~values:[ "fdatasync"; "O_DSYNC"; "O_DIRECT" ]
          ~default:"fdatasync" "how InnoDB opens and flushes data files";
        (* --- buffers --- *)
        param_int "innodb_log_buffer_size" ~lo:(kb 256) ~hi:(mb 64) ~default:(mb 8)
          "buffer for redo of uncommitted transactions";
        param_int "innodb_buffer_pool_size" ~lo:(mb 5) ~hi:(mb 4096) ~default:(mb 128)
          "InnoDB data/index cache";
        param_int "key_buffer_size" ~lo:(kb 8) ~hi:(mb 1024) ~default:(mb 8)
          "MyISAM index cache";
        param_int "sort_buffer_size" ~lo:(kb 32) ~hi:(mb 64) ~default:(mb 2)
          "per-session sort buffer";
        param_int "join_buffer_size" ~lo:(kb 128) ~hi:(mb 64) ~default:(kb 256)
          "per-join unindexed-join buffer";
        param_int "read_buffer_size" ~lo:(kb 8) ~hi:(mb 16) ~default:(kb 128)
          "sequential-scan read buffer";
        param_int "tmp_table_size" ~lo:(kb 1) ~hi:(mb 512) ~default:(mb 16)
          "max in-memory temporary table";
        param_int "max_heap_table_size" ~lo:(kb 16) ~hi:(mb 512) ~default:(mb 16)
          "max user-created MEMORY table";
        param_int "bulk_insert_buffer_size" ~lo:0 ~hi:(mb 64) ~default:(mb 8)
          "MyISAM bulk-insert tree cache";
        (* --- query cache (Figure 4) --- *)
        param_enum "query_cache_type" ~values:[ "OFF"; "ON"; "DEMAND" ] ~default:"ON"
          "query cache mode";
        param_int "query_cache_size" ~lo:0 ~hi:(mb 256) ~default:(mb 16)
          "query cache memory";
        param_bool "query_cache_wlock_invalidate" ~default:false
          "invalidate cached queries of a table on WRITE lock";
        param_int "query_cache_limit" ~lo:0 ~hi:(mb 16) ~default:(mb 1)
          "max cached result size";
        (* --- logging --- *)
        param_bool "general_log" ~default:false "log every client statement";
        param_enum "log_output" ~values:[ "FILE"; "TABLE"; "NONE" ] ~default:"FILE"
          "destination of the general and slow logs";
        param_bool "slow_query_log" ~default:false "log slow statements";
        param_float "long_query_time" ~choices:[ 0.1; 1.0; 2.0; 10.0 ] ~default_index:3
          "slow-query threshold seconds";
        param_bool "log_queries_not_using_indexes" ~default:false
          "also log statements that use no index";
        (* --- optimizer / MyISAM --- *)
        param_int "optimizer_search_depth" ~lo:0 ~hi:62 ~default:62
          "max join-order search depth (0 = auto)";
        param_enum "concurrent_insert" ~values:[ "NEVER"; "AUTO"; "ALWAYS" ] ~default:"AUTO"
          "MyISAM concurrent inserts with selects";
        param_bool "delay_key_write" ~default:false
          "delay MyISAM key writes until table close";
        param_bool "myisam_use_mmap" ~default:false "mmap MyISAM data files";
        param_bool "low_priority_updates" ~default:false
          "write statements wait for readers";
        (* --- misc performance-related --- *)
        param_int "table_open_cache" ~lo:1 ~hi:16384 ~default:400 "open table descriptors";
        param_int "thread_cache_size" ~lo:0 ~hi:16384 ~default:0 "cached service threads";
        param_int "innodb_thread_concurrency" ~lo:0 ~hi:1000 ~default:0
          "max threads inside InnoDB (0 = unlimited)";
        param_int "innodb_io_capacity" ~lo:100 ~hi:20000 ~default:200
          "background I/O operations per second";
        param_bool "innodb_adaptive_hash_index" ~default:true "adaptive hash index";
        param_bool "unique_checks" ~default:true "verify unique constraints";
        param_bool "foreign_key_checks" ~default:true "verify foreign keys";
        param_int "flush_time" ~lo:0 ~hi:3600 ~default:0 "periodic table flush seconds";
        param_bool "skip_name_resolve" ~default:false
          "skip reverse DNS of connecting clients";
        (* --- replication --- *)
        param_bool "rpl_semi_sync_master_enabled" ~default:false
          "wait for a replica ACK before committing";
        param_int "rpl_semi_sync_master_timeout" ~lo:0 ~hi:3600000 ~default:10000
          "ms to wait for the replica before degrading";
        param_int "binlog_cache_size" ~lo:4096 ~hi:(mb 64) ~default:32768
          "per-session binlog staging cache";
        param_int "slave_parallel_workers" ~lo:0 ~hi:1024 ~default:0
          "applier threads on replicas";
        (* --- InnoDB background flushing --- *)
        param_int "innodb_max_dirty_pages_pct" ~lo:0 ~hi:99 ~default:75
          "dirty-page ratio that forces aggressive flushing";
        param_int "innodb_purge_threads" ~lo:0 ~hi:32 ~default:0
          "dedicated purge threads (0 = on the master thread)";
        (* --- hooked but unused by the modelled paths (coverage filler) --- *)
        param_int "max_connections" ~lo:1 ~hi:100000 ~default:151 "client connection limit";
        param_int "wait_timeout" ~lo:1 ~hi:31536000 ~default:28800 "idle session timeout";
        param_int "net_read_timeout" ~lo:1 ~hi:31536000 ~default:30 "network read timeout";
        param_int "back_log" ~lo:1 ~hi:65535 ~default:50 "TCP listen backlog";
        param_int "open_files_limit" ~lo:0 ~hi:1000000 ~default:5000 "fd limit";
        param_int "max_allowed_packet" ~lo:1024 ~hi:(mb 1024) ~default:(mb 1)
          "max packet size";
        param_int "thread_stack" ~lo:(kb 128) ~hi:(mb 8) ~default:(kb 192) "thread stack";
        param_int "interactive_timeout" ~lo:1 ~hi:31536000 ~default:28800
          "interactive idle timeout";
        (* --- not performance-related (filtered from coverage) --- *)
        param_int "port" ~perf:false ~dynamic:false ~lo:1 ~hi:65535 ~default:3306
          "listen port";
        param_int "server_id" ~perf:false ~lo:0 ~hi:1000000 ~default:0 "replication id";
        param_enum "character_set_server" ~perf:false ~values:[ "latin1"; "utf8"; "utf8mb4" ]
          ~default:"latin1" "default charset";
        param_enum "lc_messages" ~perf:false ~values:[ "en_US"; "de_DE"; "ja_JP" ]
          ~default:"en_US" "error message locale";
        param_bool "log_bin_trust_function_creators" ~perf:false ~default:false
          "relax binlog function restrictions";
        (* --- no hook possible (Section 4.1 limits) --- *)
        param_enum "sql_mode" ~hook:No_hook_complex_type
          ~values:[ "DEFAULT"; "STRICT_ALL_TABLES"; "ANSI" ] ~default:"DEFAULT"
          "SQL behaviour flag set (flag-set type too complex to hook)";
        param_enum "time_zone" ~hook:No_hook_complex_type
          ~values:[ "SYSTEM"; "UTC"; "local" ] ~default:"SYSTEM"
          "session time zone (complex type)";
        param_enum "event_scheduler" ~hook:No_hook_function_pointer
          ~values:[ "OFF"; "ON"; "DISABLED" ] ~default:"OFF"
          "event scheduler (installed via plugin function pointers)";
        param_enum "innodb_change_buffering" ~hook:No_hook_function_pointer
          ~values:[ "none"; "inserts"; "all" ] ~default:"all"
          "change buffering (set through handlerton pointers)";
      ])

(* ------------------------------------------------------------------ *)
(* Workload template (Section 5.2)                                     *)
(* ------------------------------------------------------------------ *)

(* Encoded values the program matches against. *)
let cmd_select = 0
let cmd_insert = 1
let cmd_update = 2
let cmd_delete = 3
let cmd_commit = 4
let cmd_lock_tables = 5
let engine_innodb = 0
let engine_myisam = 1

let oltp =
  Wl.(
    template "oltp"
      [
        wparam_enum "sql_command"
          ~values:[ "SELECT"; "INSERT"; "UPDATE"; "DELETE"; "COMMIT"; "LOCK_TABLES" ]
          "statement type";
        wparam_enum "table_type" ~values:[ "INNODB"; "MYISAM" ] "storage engine";
        wparam_int "row_bytes" ~lo:64 ~hi:1048576 "bytes changed/returned per row";
        wparam_int "n_rows" ~lo:1 ~hi:100000 "rows touched by the statement";
        wparam_int "n_tables" ~lo:1 ~hi:8 "tables joined";
        wparam_bool "cached" "result already present in the query cache";
        wparam_bool "use_index" "an index covers the predicate";
        wparam_bool "other_clients_reading" "concurrent readers on the same table";
      ])

(* ------------------------------------------------------------------ *)
(* Program                                                             *)
(* ------------------------------------------------------------------ *)

let query_entry = "do_command"

(* The program is built for a specific server version; the checker's code-
   upgrade mode (Section 4.7, scenario 3) compares impact models across
   versions.  5.6 fixes the binlog group-commit problem (sync_binlog=1 no
   longer pays the 2PC dual fsync) but its query cache contends harder under
   concurrency, a regression the checker should flag. *)
let make_program version =
  let open Vir.Builder in
  program ~name:(match version with `V55 -> "mysql" | `V56 -> "mysql-5.6")
    ~entry:"mysqld_main"
    ~globals:[ "qc_invalidated", 0 ]
    [
      func "mysqld_main"
        [
          call "server_init" [];
          trace_on;
          call "do_command" [];
          trace_off;
          ret_void;
        ];
      func "server_init"
        [ malloc (cfg "innodb_buffer_pool_size"); compute (i 20000); ret_void ];
      func "do_command"
        [
          net_recv (i 128);
          if_ (cfg "skip_name_resolve" ==. i 0) [ cache_lookup ] [];
          if_ (wl "row_bytes" >. cfg "max_allowed_packet") [ compute (i 200) ] [];
          call "dispatch_command" [];
          net_send (i 512);
          ret_void;
        ];
      func "dispatch_command" [ compute (i 60); call "mysql_parse" []; ret_void ];
      (* libc-like externals, exercising the selective-concretization
         consistency model and its relaxation rules (Section 5.4) *)
      library "my_hash" ~effect:Pure ~cost:[ Compute, 40 ] (fun args ->
          match args with [ x ] -> (x * 2654435761) land 0xFFFF | _ -> 0);
      library "my_error_log" ~effect:Benign ~cost:[ Buffered_write, 64 ] (fun _ -> 0);
      library "posix_fadvise" ~effect:Effectful ~cost:[ Compute, 30 ] (fun _ -> 0);
      (* Figure 4: probe the query cache before executing *)
      func "mysql_parse"
        [
          compute (i 200);
          call ~dest:"digest" "my_hash" [ wl "row_bytes" ];
          call ~dest:"hit" "send_result_to_client" [];
          if_ (lv "hit" <=. i 0) [ call "mysql_execute_command" [] ] [];
          ret_void;
        ];
      func "send_result_to_client"
        [
          if_
            ((cfg "query_cache_type" <>. i 0) &&. (cfg "query_cache_size" >. i 0))
            [
              mutex_lock;
              cache_lookup;
              (* structure_guard mutex contention under concurrent readers;
                 contention worsened in 5.6 as the rest of the server scaled *)
              if_
                ((wl "other_clients_reading" ==. i 1) &&. (cfg "query_cache_type" ==. i 1))
                (match version with
                | `V55 -> [ cond_wait ]
                | `V56 -> [ cond_wait; cond_wait; cond_wait ])
                [];
              mutex_unlock;
              if_
                ((wl "sql_command" ==. i cmd_select)
                &&. (wl "cached" ==. i 1)
                &&. (gv "qc_invalidated" ==. i 0))
                [ buffered_read (i 4096); ret (i 1) ]
                [];
            ]
            [];
          ret (i 0);
        ];
      func "mysql_execute_command"
        [
          if_ (wl "sql_command" ==. i cmd_select)
            [ call "execute_select" [] ]
            [
              if_
                ((wl "sql_command" ==. i cmd_insert)
                ||. (wl "sql_command" ==. i cmd_update)
                ||. (wl "sql_command" ==. i cmd_delete))
                [ call "execute_dml" [] ]
                [
                  if_ (wl "sql_command" ==. i cmd_commit)
                    [ call "trans_commit" [] ]
                    [
                      if_ (wl "sql_command" ==. i cmd_lock_tables)
                        [ call "lock_tables_open_and_lock_tables" [] ]
                        [];
                    ];
                ];
            ];
          call "log_general_query" [];
          call "log_slow_query_maybe" [];
          ret_void;
        ];
      (* ---------------- SELECT path ---------------- *)
      func "execute_select"
        [
          call "open_and_lock_tables" [];
          call "join_optimize" [];
          call "read_rows" [];
          call "query_cache_store" [];
          ret_void;
        ];
      func "open_and_lock_tables"
        [
          compute (i 100);
          if_ (cfg "table_open_cache" <. i 64) [ buffered_read (i 2048) ] [];
          (* Table 5 (unknown): concurrent_insert=ALWAYS penalizes readers on
             MyISAM tables with a writer queue check *)
          if_
            ((wl "table_type" ==. i engine_myisam)
            &&. (cfg "concurrent_insert" ==. i 2)
            &&. (wl "sql_command" ==. i cmd_select))
            [ mutex_lock; cond_wait; mutex_unlock ]
            [];
          ret_void;
        ];
      func "join_optimize"
        [
          if_ (wl "n_tables" >. i 1)
            [
              set "depth"
                (ite (cfg "optimizer_search_depth" ==. i 0) (wl "n_tables")
                   (cfg "optimizer_search_depth"));
              (* greedy join-order search: each extra level roughly doubles
                 the orders examined, so a deep search on a wide join is
                 exponentially slower (Table 5) *)
              set "level" (i 0);
              set "order_cost" (i 400);
              while_ ((lv "level" <. lv "depth") &&. (lv "level" <. wl "n_tables"))
                [
                  compute (lv "order_cost");
                  set "order_cost" (lv "order_cost" *. i 2);
                  set "level" (lv "level" +. i 1);
                ];
              if_ (wl "n_rows" *. i 64 >. cfg "join_buffer_size")
                [ compute (wl "n_rows" /. i 2) ]
                [];
              (* materialize an internal temporary table when it outgrows
                 the in-memory limit *)
              if_
                (wl "n_rows" *. wl "row_bytes"
                >. ite (cfg "tmp_table_size" <. cfg "max_heap_table_size")
                     (cfg "tmp_table_size") (cfg "max_heap_table_size"))
                [ pwrite (wl "n_rows" *. i 32) ]
                [];
              if_ (wl "n_rows" *. i 16 >. cfg "sort_buffer_size")
                [ compute (wl "n_rows" *. i 2); buffered_write (wl "n_rows" *. i 16) ]
                [];
            ]
            [ compute (i 80) ];
          ret_void;
        ];
      func "read_rows"
        [
          call "posix_fadvise" [ i 1 ];
          if_ (cfg "innodb_adaptive_hash_index" ==. i 1) [ cache_lookup ] [];
          if_ (wl "table_type" ==. i 1)
            [
              (* MyISAM: index blocks come from the key buffer *)
              if_ (cfg "key_buffer_size" <. i 1048576)
                [ pread (i 4096) ]
                [ buffered_read (i 4096) ];
            ]
            [];
          if_ (wl "use_index" ==. i 1)
            [ buffered_read (i 4096); compute (wl "n_rows" /. i 4) ]
            [
              if_ (wl "n_rows" *. i 128 >. cfg "read_buffer_size")
                [ compute (wl "n_rows" /. i 2) ]
                [];
              (* full scan; misses the buffer pool when the scan exceeds it *)
              if_ (wl "n_rows" *. i 128 >. cfg "innodb_buffer_pool_size")
                [ pread (wl "n_rows" *. i 128); page_fault ]
                [ buffered_read (wl "n_rows" *. i 128) ];
              compute (wl "n_rows");
            ];
          ret_void;
        ];
      func "query_cache_store"
        [
          if_
            ((cfg "query_cache_type" ==. i 1)
            &&. (cfg "query_cache_size" >. i 0)
            &&. (wl "row_bytes" <. cfg "query_cache_limit"))
            [ mutex_lock; cache_store; mutex_unlock ]
            [];
          ret_void;
        ];
      (* ---------------- DML path (Figure 3) ---------------- *)
      func "execute_dml"
        [
          if_ (cfg "innodb_thread_concurrency" >. i 0) [ mutex_lock; mutex_unlock ] [];
          if_ ((cfg "low_priority_updates" ==. i 1) &&. (wl "other_clients_reading" ==. i 1))
            [ cond_wait ]
            [];
          call "open_and_lock_tables" [];
          call "decide_logging_format" [];
          call "write_row" [];
          ret_void;
        ];
      (* Figure 10: binlog_format is an enabler of autocommit *)
      func "decide_logging_format"
        [
          if_ (cfg "binlog_format" ==. i 0)
            [ if_ (cfg "autocommit" ==. i 1) [ compute (i 30) ] [ compute (i 60) ] ]
            [ compute (i 20) ];
          ret_void;
        ];
      func "write_row"
        [
          compute (i 600);
          if_ (cfg "unique_checks" ==. i 1) [ compute (wl "n_rows" /. i 8 +. i 40) ] [];
          if_ (cfg "foreign_key_checks" ==. i 1) [ compute (i 50) ] [];
          buffered_write (wl "row_bytes");
          if_ (wl "table_type" ==. i engine_innodb)
            [
              call "buf_flush_maybe" [];
              call "log_reserve_and_open" [ wl "row_bytes" ];
              if_ (cfg "innodb_doublewrite" ==. i 1) [ buffered_write (wl "row_bytes") ] [];
              call "binlog_write" [];
              if_ (cfg "autocommit" ==. i 1) [ call "trans_commit_stmt" [] ] [];
            ]
            [ call "myisam_write" [] ];
          ret_void;
        ];
      func "myisam_write"
        [
          buffered_write (wl "row_bytes");
          if_ (cfg "delay_key_write" ==. i 0) [ pwrite (i 1024) ] [ buffered_write (i 1024) ];
          call "binlog_write" [];
          ret_void;
        ];
      func "binlog_write"
        [
          if_ (cfg "sql_log_bin" ==. i 1)
            [
              if_ (cfg "binlog_format" ==. i 0)
                [ log_append (wl "row_bytes") ]
                [ log_append (i 128) ];
              (* a transaction bigger than the binlog cache spills to disk *)
              if_ (wl "row_bytes" >. cfg "binlog_cache_size")
                [ pwrite (wl "row_bytes") ]
                [];
              if_ (cfg "sync_binlog" ==. i 1)
                (match version with
                | `V55 ->
                  [
                    (* two-phase commit with a synced binlog: InnoDB prepare
                       flush + binlog fsync (MySQL 5.5 has no binlog group
                       commit, the notorious dual-fsync penalty) *)
                    pwrite (i 4096);
                    fsync;
                    fsync;
                  ]
                | `V56 ->
                  (* binlog group commit: one ordered flush *)
                  [ pwrite (i 4096); fsync ])
                [ if_ (cfg "sync_binlog" >. i 1) [ buffered_write (i 64) ] [] ];
            ]
            [];
          ret_void;
        ];
      (* Figure 5 *)
      func "log_reserve_and_open" ~params:[ "len" ]
        [
          if_ (lv "len" >=. cfg "innodb_log_buffer_size" /. i 2)
            [ call "log_buffer_extend" [ (lv "len" +. i 1) *. i 2 ] ]
            [];
          (* len_upper_limit = MARGIN + 5*len/4 against the free space
             (modelled as a quarter of the buffer) *)
          if_
            (lv "len" *. i 5 /. i 4 +. i 2048 >. cfg "innodb_log_buffer_size" /. i 4)
            [ call "log_buffer_flush_to_disk" [] ]
            [];
          log_append (lv "len");
          ret_void;
        ];
      func "log_buffer_extend" ~params:[ "new_size" ]
        [
          mutex_lock;
          malloc (lv "new_size");
          memcpy (lv "new_size");
          mutex_unlock;
          ret_void;
        ];
      func "log_buffer_flush_to_disk" [ pwrite (i 16384); fsync; ret_void ];
      (* aggressive flushing kicks in when the dirty-page threshold is low
         relative to the write burst *)
      func "buf_flush_maybe"
        [
          if_ (wl "n_rows" *. i 2 >. cfg "innodb_max_dirty_pages_pct" *. i 100)
            [ pwrite (i 32768) ]
            [];
          if_ (cfg "innodb_purge_threads" ==. i 0)
            [ compute (wl "n_rows" /. i 4 +. i 20) ]  (* purge on the master thread *)
            [];
          ret_void;
        ];
      (* commit paths *)
      func "trans_commit"
        [ compute (i 120); call "trx_commit_complete" []; call "semi_sync_wait" []; ret_void ];
      (* semi-synchronous replication blocks the commit on a replica ACK;
         only built into 5.6 (a separate plugin in 5.5) *)
      func "semi_sync_wait"
        (match version with
        | `V55 -> [ ret_void ]
        | `V56 ->
          [
            if_
              ((cfg "rpl_semi_sync_master_enabled" ==. i 1) &&. (cfg "sql_log_bin" ==. i 1))
              [
                (* ship the event, wait for the replica to flush its relay
                   log and acknowledge: a round trip plus replica I/O *)
                net_send (i 512);
                cond_wait;
                net_recv (i 64);
                net_recv (i 64);
                if_ (cfg "rpl_semi_sync_master_timeout" <. i 100) [ compute (i 200) ] [];
              ]
              [];
            ret_void;
          ]);
      func "trans_commit_stmt"
        [ compute (i 150); call "trx_commit_complete" []; call "semi_sync_wait" []; ret_void ];
      func "trx_commit_complete"
        [
          if_ (cfg "innodb_flush_log_at_trx_commit" ==. i 1)
            [ call "log_write_up_to" []; call "fil_flush" [] ]
            [
              if_ (cfg "innodb_flush_log_at_trx_commit" ==. i 2)
                [ call "log_write_up_to" [] ]
                [];
            ];
          ret_void;
        ];
      func "log_write_up_to" [ pwrite (i 4096); ret_void ];
      func "fil_flush"
        [
          if_ (cfg "innodb_flush_method" ==. i 2)
            [ fsync ]  (* O_DIRECT: data already bypassed the page cache *)
            [ buffered_write (i 512); fsync ];
          ret_void;
        ];
      (* ---------------- LOCK TABLES path (Figure 4) ---------------- *)
      func "lock_tables_open_and_lock_tables"
        [
          call "open_and_lock_tables" [];
          mutex_lock;
          if_
            ((cfg "query_cache_type" <>. i 0) &&. (cfg "query_cache_wlock_invalidate" ==. i 1))
            [ call "invalidate_query_block_list" [] ]
            [];
          mutex_unlock;
          ret_void;
        ];
      func "invalidate_query_block_list"
        [
          compute (i 50);
          cache_store;  (* free_query on the block list *)
          setg "qc_invalidated" (i 1);
          (* readers of the locked table lose the cache, re-execute their
             queries and block on the write lock: the concurrency loss the
             paper describes dominates this path *)
          if_ (wl "other_clients_reading" ==. i 1)
            [ cond_wait; cond_wait; cond_wait; cond_wait; cond_wait; cond_wait;
              compute (i 4000) ]
            [];
          ret_void;
        ];
      (* ---------------- logging ---------------- *)
      func "log_general_query"
        [
          if_ (cfg "general_log" ==. i 1)
            [
              if_ (cfg "log_output" ==. i 0)
                [ log_append (i 1024); buffered_write (i 1024) ]  (* FILE *)
                [
                  if_ (cfg "log_output" ==. i 1)
                    [ buffered_write (i 2048); compute (i 300) ]  (* TABLE: a row insert *)
                    [];
                ];
            ]
            [];
          ret_void;
        ];
      func "log_slow_query_maybe"
        [
          if_ (cfg "slow_query_log" ==. i 1)
            [
              (* long_query_time is a float choice list: small indices are
                 aggressive thresholds that log most statements *)
              if_ (cfg "long_query_time" <=. i 1) [ buffered_write (i 512) ] [];
              if_
                ((cfg "log_queries_not_using_indexes" ==. i 1) &&. (wl "use_index" ==. i 0))
                [ buffered_write (i 512); call "my_error_log" [ wl "n_rows" ] ]
                [];
            ]
            [];
          ret_void;
        ];
    ]

let program = make_program `V55
let program_56 = make_program `V56

let target =
  { Violet.Pipeline.name = "mysql"; program; registry; workloads = [ oltp ] }

let target_56 =
  { Violet.Pipeline.name = "mysql-5.6"; program = program_56; registry; workloads = [ oltp ] }

(* ------------------------------------------------------------------ *)
(* Concrete workload mixes                                             *)
(* ------------------------------------------------------------------ *)

let inst overrides = Wl.instantiate_named oltp overrides

let point_select =
  inst
    [ "sql_command", "SELECT"; "table_type", "INNODB"; "row_bytes", "256"; "n_rows", "10";
      "n_tables", "1"; "cached", "OFF"; "use_index", "ON"; "other_clients_reading", "OFF" ]

let cached_select =
  inst
    [ "sql_command", "SELECT"; "table_type", "INNODB"; "row_bytes", "256"; "n_rows", "10";
      "n_tables", "1"; "cached", "ON"; "use_index", "ON"; "other_clients_reading", "OFF" ]

let small_insert =
  inst
    [ "sql_command", "INSERT"; "table_type", "INNODB"; "row_bytes", "256"; "n_rows", "1";
      "n_tables", "1"; "cached", "OFF"; "use_index", "ON"; "other_clients_reading", "OFF" ]

let small_update =
  inst
    [ "sql_command", "UPDATE"; "table_type", "INNODB"; "row_bytes", "256"; "n_rows", "1";
      "n_tables", "1"; "cached", "OFF"; "use_index", "ON"; "other_clients_reading", "OFF" ]

let commit_stmt =
  inst
    [ "sql_command", "COMMIT"; "table_type", "INNODB"; "row_bytes", "64"; "n_rows", "1";
      "n_tables", "1"; "cached", "OFF"; "use_index", "ON"; "other_clients_reading", "OFF" ]

let join_select =
  inst
    [ "sql_command", "SELECT"; "table_type", "INNODB"; "row_bytes", "512"; "n_rows", "1000";
      "n_tables", "6"; "cached", "OFF"; "use_index", "OFF"; "other_clients_reading", "OFF" ]

let scan_select =
  inst
    [ "sql_command", "SELECT"; "table_type", "INNODB"; "row_bytes", "256"; "n_rows", "50000";
      "n_tables", "1"; "cached", "OFF"; "use_index", "OFF"; "other_clients_reading", "OFF" ]

let big_insert =
  inst
    [ "sql_command", "INSERT"; "table_type", "INNODB"; "row_bytes", "524288"; "n_rows", "1";
      "n_tables", "1"; "cached", "OFF"; "use_index", "ON"; "other_clients_reading", "OFF" ]

let point_select_concurrent =
  inst
    [ "sql_command", "SELECT"; "table_type", "INNODB"; "row_bytes", "256"; "n_rows", "10";
      "n_tables", "1"; "cached", "OFF"; "use_index", "ON"; "other_clients_reading", "ON" ]

let myisam_select_concurrent =
  inst
    [ "sql_command", "SELECT"; "table_type", "MYISAM"; "row_bytes", "256"; "n_rows", "100";
      "n_tables", "1"; "cached", "OFF"; "use_index", "ON"; "other_clients_reading", "ON" ]

let lock_tables_stmt =
  inst
    [ "sql_command", "LOCK_TABLES"; "table_type", "MYISAM"; "row_bytes", "64"; "n_rows", "1";
      "n_tables", "1"; "cached", "OFF"; "use_index", "ON"; "other_clients_reading", "ON" ]

(* Figure 2(a): 70% read, 20% write, 10% other.  sysbench keeps the same
   transaction boundaries in both modes: with autocommit off it issues an
   explicit COMMIT per write transaction, so the two mixes do equivalent
   flush work and the throughput difference is small. *)
let normal_mix ~autocommit =
  let base =
    [ point_select, 0.5; cached_select, 0.2; small_insert, 0.1; small_update, 0.1;
      join_select, 0.1 ]
  in
  if autocommit then base else base @ [ commit_stmt, 0.2 ]

(* Figure 2(b): insert-intensive.  The recommended fix batches several
   inserts per explicit COMMIT, amortizing the redo-log fsync. *)
let insert_mix ~autocommit =
  if autocommit then [ small_insert, 1.0 ]
  else [ small_insert, 5.0; commit_stmt, 1.0 ]

(* the stock sysbench suites black-box testing enumerates (Section 7.3) *)
let standard_workloads =
  [
    "oltp_read_write", normal_mix ~autocommit:true;
    "oltp_read_only",
    [ point_select, 0.4; point_select_concurrent, 0.4; cached_select, 0.1; join_select, 0.1 ];
    "oltp_write_only", [ small_insert, 0.6; small_update, 0.3; commit_stmt, 0.1 ];
    "oltp_insert", [ small_insert, 1.0 ];
    "select_random_ranges", [ scan_select, 1.0 ];
  ]

(* mixes that only Violet's input predicates point the operator to — stock
   benchmark suites do not exercise them *)
let validation_workloads =
  [
    "bulk_insert", [ big_insert, 1.0 ];
    "myisam_concurrent", [ myisam_select_concurrent, 0.9; lock_tables_stmt, 0.1 ];
  ]
