(** Executable performance model of Apache httpd 2.4 (paper Section 7).

    Covers [HostnameLookups] (c12), domain-based access control
    [Deny from] (c13), and [MaxKeepAliveRequests] / [KeepAliveTimeout]
    (c14/c15).  The paper's Violet {e missed} c14 and c15 because its Apache
    workload templates did not parameterize HTTP keep-alive; this model
    reproduces that: {!http} (the default template) has no keep-alive
    parameter, while {!http_keepalive} exposes it — analyses run with the
    default template miss the two cases exactly as the paper reports. *)

val registry : Vruntime.Config_registry.t

val http : Vruntime.Workload.template
(** Default template: no keep-alive workload parameter (the c14/c15 gap). *)

val http_keepalive : Vruntime.Workload.template
val program : Vir.Ast.program
val target : Violet.Pipeline.target
val query_entry : string
val standard_workloads : (string * (Vruntime.Workload.instance * float) list) list
val validation_workloads : (string * (Vruntime.Workload.instance * float) list) list
