lib/targets/postgres_model.mli: Violet Vir Vruntime
