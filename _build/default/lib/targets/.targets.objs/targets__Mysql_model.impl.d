lib/targets/mysql_model.ml: Violet Vir Vruntime
