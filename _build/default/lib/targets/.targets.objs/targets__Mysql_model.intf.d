lib/targets/mysql_model.mli: Violet Vir Vruntime
