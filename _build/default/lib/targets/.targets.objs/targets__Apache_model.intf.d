lib/targets/apache_model.mli: Violet Vir Vruntime
