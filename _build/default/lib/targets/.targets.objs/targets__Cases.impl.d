lib/targets/cases.ml: Apache_model List Mysql_model Postgres_model Printf Squid_model String Violet
