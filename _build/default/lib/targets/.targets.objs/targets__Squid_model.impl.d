lib/targets/squid_model.ml: Violet Vir Vruntime
