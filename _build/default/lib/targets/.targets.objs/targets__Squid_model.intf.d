lib/targets/squid_model.mli: Violet Vir Vruntime
