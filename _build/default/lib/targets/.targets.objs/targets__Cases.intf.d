lib/targets/cases.mli: Violet Vruntime
