lib/targets/apache_model.ml: Violet Vir Vruntime
