lib/targets/patterns.ml: Violet Vir Vruntime
