lib/targets/postgres_model.ml: Violet Vir Vruntime
