lib/targets/patterns.mli: Violet
