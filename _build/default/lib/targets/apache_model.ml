module Reg = Vruntime.Config_registry
module Wl = Vruntime.Workload

let registry =
  Reg.(
    make ~system:"apache"
      [
        (* --- connection handling (c14, c15) --- *)
        param_bool "KeepAlive" ~default:true "allow persistent connections";
        param_int "MaxKeepAliveRequests" ~lo:0 ~hi:65536 ~default:100
          "requests allowed per persistent connection (0 = unlimited)";
        param_int "KeepAliveTimeout" ~lo:1 ~hi:300 ~default:5
          "seconds to wait for the next request on a connection";
        param_int "Timeout" ~lo:1 ~hi:600 ~default:60 "general I/O timeout";
        (* --- name resolution / access control (c12, c13) --- *)
        param_enum "HostnameLookups" ~values:[ "Off"; "On"; "Double" ] ~default:"Off"
          "reverse-DNS client addresses for logging";
        param_enum "DenyFrom" ~values:[ "none"; "ip"; "domain" ] ~default:"none"
          "access restriction kind (domain rules force per-request DNS)";
        (* --- request processing --- *)
        param_enum "AllowOverride" ~values:[ "None"; "FileInfo"; "All" ] ~default:"None"
          "honour .htaccess files (walks every path component)";
        param_bool "FollowSymLinks" ~default:true
          "skip per-component symlink checks when enabled";
        param_bool "EnableSendfile" ~default:false "serve static files via sendfile";
        param_bool "EnableMMAP" ~default:true "mmap files during delivery";
        param_bool "ContentDigest" ~default:false
          "compute a Content-MD5 digest for every response";
        (* --- logging --- *)
        param_bool "CustomLog" ~default:true "write an access-log record per request";
        param_bool "BufferedLogs" ~default:false "buffer access-log writes";
        param_enum "LogLevel" ~values:[ "error"; "warn"; "info"; "debug" ] ~default:"warn"
          "error-log verbosity";
        param_bool "ExtendedStatus" ~default:false "track per-request scoreboard detail";
        param_int "LimitRequestFields" ~lo:0 ~hi:32767 ~default:100
          "max request header fields scanned";
        param_int "LimitRequestFieldSize" ~lo:0 ~hi:65536 ~default:8190
          "max bytes per header field";
        (* --- hooked but unused by the modelled paths --- *)
        param_int "MaxRequestWorkers" ~lo:1 ~hi:20000 ~default:256 "worker limit";
        param_int "ServerLimit" ~lo:1 ~hi:20000 ~default:16 "process slots";
        param_int "StartServers" ~lo:1 ~hi:1024 ~default:3 "initial child processes";
        param_int "ThreadsPerChild" ~lo:1 ~hi:1024 ~default:25 "threads per child";
        param_int "ListenBacklog" ~lo:1 ~hi:65535 ~default:511 "accept queue length";
        param_int "MaxConnectionsPerChild" ~lo:0 ~hi:1000000 ~default:0
          "recycle children after N connections";
        (* --- not performance-related --- *)
        param_int "Listen" ~perf:false ~dynamic:false ~lo:1 ~hi:65535 ~default:80
          "listen port";
        param_enum "ServerTokens" ~perf:false ~values:[ "Prod"; "Full" ] ~default:"Full"
          "Server header verbosity";
        param_enum "User" ~perf:false ~values:[ "www-data"; "apache" ] ~default:"www-data"
          "worker identity";
        (* --- module directives set through function-pointer tables: the
           reason Apache's hook coverage is lowest (Table 6) --- *)
        param_bool "SSLEngine" ~hook:No_hook_function_pointer ~default:false "mod_ssl";
        param_enum "SSLCipherSuite" ~hook:No_hook_function_pointer
          ~values:[ "DEFAULT"; "HIGH" ] ~default:"DEFAULT" "mod_ssl ciphers";
        param_bool "RewriteEngine" ~hook:No_hook_function_pointer ~default:false
          "mod_rewrite";
        param_bool "CacheEnable" ~hook:No_hook_function_pointer ~default:false "mod_cache";
        param_int "DeflateCompressionLevel" ~hook:No_hook_function_pointer ~lo:1 ~hi:9
          ~default:6 "mod_deflate level";
        param_bool "ExpiresActive" ~hook:No_hook_function_pointer ~default:false
          "mod_expires";
        param_bool "ProxyPass" ~hook:No_hook_function_pointer ~default:false "mod_proxy";
        param_enum "MPM" ~hook:No_hook_complex_type ~values:[ "event"; "worker"; "prefork" ]
          ~default:"event" "multi-processing module (selected at load time)";
        param_bool "HeaderSet" ~hook:No_hook_function_pointer ~default:false "mod_headers";
        param_bool "SetEnvIf" ~hook:No_hook_function_pointer ~default:false "mod_setenvif";
        param_int "LimitRequestBody" ~hook:No_hook_function_pointer ~lo:0 ~hi:2147483647
          ~default:0 "request body cap (per-dir merge tables)";
        param_bool "DavEnable" ~hook:No_hook_function_pointer ~default:false "mod_dav";
        param_enum "BrowserMatch" ~hook:No_hook_complex_type ~values:[ "none"; "legacy" ]
          ~default:"none" "conditional env rules (regex grammar)";
        param_bool "StatusEnable" ~hook:No_hook_function_pointer ~default:false "mod_status";
        param_bool "AutoIndex" ~hook:No_hook_function_pointer ~default:false "mod_autoindex";
        param_enum "IncludeOptimizer" ~hook:No_hook_function_pointer
          ~values:[ "off"; "on" ] ~default:"off" "mod_include";
      ])

let req_static_small = 0
let _req_static_large = 1
let req_dynamic = 2

let base_params =
  Wl.(
    [
      wparam_enum "request_type" ~values:[ "STATIC_SMALL"; "STATIC_LARGE"; "DYNAMIC" ]
        "request class";
      wparam_int "response_bytes" ~lo:128 ~hi:10485760 "response size";
      wparam_int "path_depth" ~lo:1 ~hi:8 "directory components in the URL";
    ])

(* The paper's Apache templates left keep-alive out of the workload
   parameters (it is disabled by default in their harness), which is why c14
   and c15 were missed (Section 7.2). *)
let http = Wl.template "http" base_params

let http_keepalive =
  Wl.template "http_keepalive"
    (base_params @ [ Wl.wparam_bool "keepalive_requested" "client asks for keep-alive" ])

let query_entry = "process_request"

let program =
  let open Vir.Builder in
  program ~name:"apache" ~entry:"httpd_main"
    [
      func "httpd_main"
        [ call "server_init" []; trace_on; call "process_request" []; trace_off; ret_void ];
      func "server_init" [ malloc (i 4194304); compute (i 5000); ret_void ];
      func "process_request"
        [
          net_recv (i 256);
          call "parse_headers" [];
          call "check_access" [];
          call "log_hostname_maybe" [];
          call "map_to_storage" [];
          call "handle_request" [];
          call "write_access_log" [];
          call "keepalive_maybe" [];
          ret_void;
        ];
      func "parse_headers"
        [
          compute (cfg "LimitRequestFields" *. i 4 +. i 60);
          if_ (cfg "LimitRequestFieldSize" >. i 16384) [ malloc (cfg "LimitRequestFieldSize") ] [];
          ret_void;
        ];
      func "check_access"
        [
          if_ (cfg "DenyFrom" ==. i 2)
            [ dns_lookup; dns_lookup ]  (* double-reverse lookup per request *)
            [ if_ (cfg "DenyFrom" ==. i 1) [ compute (i 30) ] [] ];
          ret_void;
        ];
      func "log_hostname_maybe"
        [
          (* the resolved name is only needed for the access log *)
          if_ (cfg "CustomLog" ==. i 1)
            [
              if_ (cfg "HostnameLookups" ==. i 2)
                [ dns_lookup; dns_lookup ]
                [ if_ (cfg "HostnameLookups" ==. i 1) [ dns_lookup ] [] ];
            ]
            [];
          ret_void;
        ];
      func "map_to_storage"
        [
          if_ (cfg "AllowOverride" <>. i 0)
            [ buffered_read (wl "path_depth" *. i 512); compute (wl "path_depth" *. i 80) ]
            [];
          if_ (cfg "FollowSymLinks" ==. i 0) [ compute (wl "path_depth" *. i 120) ] [];
          ret_void;
        ];
      func "handle_request"
        [
          if_ (wl "request_type" ==. i req_dynamic)
            [ compute (i 6000); buffered_read (i 16384) ]
            [
              if_ (cfg "EnableSendfile" ==. i 1)
                [ buffered_read (wl "response_bytes") ]
                [
                  if_
                    ((cfg "EnableMMAP" ==. i 1)
                    &&. (wl "request_type" ==. i req_static_small))
                    [ buffered_read (wl "response_bytes"); page_fault ]
                    [ pread (wl "response_bytes") ];
                ];
              if_ (cfg "ContentDigest" ==. i 1) [ compute (wl "response_bytes" /. i 8) ] [];
            ];
          net_send (wl "response_bytes");
          ret_void;
        ];
      func "write_access_log"
        [
          if_ (cfg "CustomLog" ==. i 1)
            [
              if_ (cfg "BufferedLogs" ==. i 1) [ log_append (i 128) ] [ pwrite (i 128) ];
            ]
            [];
          if_ (cfg "LogLevel" ==. i 3) [ buffered_write (i 512) ] [];
          if_ (cfg "ExtendedStatus" ==. i 1) [ mutex_lock; compute (i 40); mutex_unlock ] [];
          ret_void;
        ];
      func "keepalive_maybe"
        [
          if_ ((cfg "KeepAlive" ==. i 1) &&. (wl "keepalive_requested" ==. i 1))
            [
              (* a small request cap forces reconnect churn (c14) *)
              if_ ((cfg "MaxKeepAliveRequests" >. i 0) &&. (cfg "MaxKeepAliveRequests" <. i 10))
                [
                  (* FIN/ACK teardown, TCP handshake, slow-start restart *)
                  net_send (i 64);
                  net_recv (i 64);
                  net_send (i 64);
                  compute (i 2000);
                ]
                [];
              (* a large timeout pins the worker on the idle connection (c15) *)
              if_ (cfg "KeepAliveTimeout" >. i 30) [ cond_wait ] [];
            ]
            [
              (* no keep-alive: connection teardown + setup per request *)
              net_send (i 64);
              net_recv (i 64);
              compute (i 400);
            ];
          ret_void;
        ];
    ]

let target =
  {
    Violet.Pipeline.name = "apache";
    program;
    registry;
    workloads = [ http; http_keepalive ];
  }

let inst overrides = Wl.instantiate_named http overrides

let small_static =
  inst [ "request_type", "STATIC_SMALL"; "response_bytes", "4096"; "path_depth", "2" ]

let large_static =
  inst [ "request_type", "STATIC_LARGE"; "response_bytes", "1048576"; "path_depth", "2" ]

let dynamic_page =
  inst [ "request_type", "DYNAMIC"; "response_bytes", "16384"; "path_depth", "4" ]

let standard_workloads =
  [
    "ab_static", [ small_static, 1.0 ];
    "ab_mixed", [ small_static, 0.6; large_static, 0.2; dynamic_page, 0.2 ];
    "ab_download", [ large_static, 1.0 ];
    "ab_dynamic", [ dynamic_page, 1.0 ];
  ]

let validation_workloads = []
