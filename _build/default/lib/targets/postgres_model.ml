module Reg = Vruntime.Config_registry
module Wl = Vruntime.Workload

let mb n = n * 1024 * 1024
let kb n = n * 1024

let registry =
  Reg.(
    make ~system:"postgres"
      [
        (* --- WAL / durability --- *)
        param_enum "wal_sync_method"
          ~values:[ "fdatasync"; "fsync"; "open_datasync"; "open_sync" ]
          ~default:"fdatasync" "how WAL updates are forced to disk";
        param_enum "synchronous_commit"
          ~values:[ "off"; "local"; "on"; "remote_write" ] ~default:"on"
          "wait for WAL flush at commit";
        param_bool "fsync" ~default:true "force WAL to stable storage at all";
        param_bool "full_page_writes" ~default:true
          "write full pages after checkpoints";
        param_int "wal_buffers" ~lo:(kb 32) ~hi:(mb 16) ~default:(kb 512)
          "WAL buffer memory";
        param_int "commit_delay" ~lo:0 ~hi:100000 ~default:0
          "microseconds to delay commit for group flush";
        (* --- archiving (c8, archive_timeout) --- *)
        param_enum "archive_mode" ~values:[ "off"; "on"; "always" ] ~default:"off"
          "archive completed WAL segments";
        param_int "archive_timeout" ~lo:0 ~hi:86400 ~default:0
          "force a segment switch every N seconds";
        (* --- checkpoints (c9, c10) --- *)
        param_int "max_wal_size" ~lo:2 ~hi:16384 ~default:1024
          "MB of WAL between automatic checkpoints";
        param_int "min_wal_size" ~lo:32 ~hi:16384 ~default:80 "MB of recycled WAL kept";
        param_float "checkpoint_completion_target" ~choices:[ 0.1; 0.3; 0.5; 0.7; 0.9 ]
          ~default_index:2 "fraction of the interval to spread checkpoint I/O over";
        param_int "checkpoint_timeout" ~lo:30 ~hi:86400 ~default:300
          "seconds between automatic checkpoints";
        (* --- background writer (c11) --- *)
        param_float "bgwriter_lru_multiplier" ~choices:[ 0.5; 1.0; 2.0; 4.0; 10.0 ]
          ~default_index:2 "multiple of recent buffer demand to clean ahead";
        param_int "bgwriter_delay" ~lo:10 ~hi:10000 ~default:200
          "milliseconds between bgwriter rounds";
        param_int "bgwriter_lru_maxpages" ~lo:0 ~hi:1073741823 ~default:100
          "max pages written per bgwriter round";
        (* --- memory --- *)
        param_int "shared_buffers" ~lo:1 ~hi:65536 ~default:128 "MB of shared page cache";
        param_int "work_mem" ~lo:64 ~hi:(mb 2) ~default:4096 "KB per sort/hash operation";
        param_int "maintenance_work_mem" ~lo:1024 ~hi:(mb 2) ~default:65536
          "KB for maintenance operations";
        param_int "effective_cache_size" ~lo:1 ~hi:1048576 ~default:4096
          "planner's assumption of OS cache (MB)";
        param_int "temp_buffers" ~lo:100 ~hi:1073741823 ~default:1024
          "per-session temp-table buffers (8k pages)";
        (* --- planner (random_page_cost, parallel) --- *)
        param_float "random_page_cost" ~choices:[ 1.0; 1.1; 1.2; 2.0; 4.0 ]
          ~default_index:4 "planner cost of a non-sequential page fetch";
        param_float "seq_page_cost" ~choices:[ 0.5; 1.0; 2.0 ] ~default_index:1
          "planner cost of a sequential page fetch";
        param_bool "parallel_leader_participation" ~default:true
          "leader also executes the parallel plan";
        param_int "max_parallel_workers_per_gather" ~lo:0 ~hi:64 ~default:2
          "workers per Gather node";
        param_bool "jit" ~default:false "JIT-compile expressions";
        param_int "default_statistics_target" ~lo:1 ~hi:10000 ~default:100
          "histogram detail collected by ANALYZE";
        (* --- logging (log_statement) --- *)
        param_enum "log_statement" ~values:[ "none"; "ddl"; "mod"; "all" ] ~default:"none"
          "which statements are logged";
        param_int "log_min_duration_statement" ~lo:(-1) ~hi:3600000 ~default:(-1)
          "log statements running at least N ms";
        (* --- vacuum --- *)
        param_bool "autovacuum" ~default:true "run the autovacuum launcher";
        param_float "vacuum_cost_delay" ~choices:[ 0.0; 2.0; 10.0; 20.0 ] ~default_index:3
          "ms to sleep when the vacuum cost budget is spent";
        param_int "vacuum_cost_limit" ~lo:1 ~hi:10000 ~default:200
          "cost budget before a vacuum sleep";
        (* --- replication --- *)
        param_enum "synchronous_standby_names" ~values:[ "none"; "one"; "quorum" ]
          ~default:"none" "replicas a commit must wait for";
        param_bool "wal_compression" ~default:false "compress full-page WAL images";
        param_bool "hot_standby" ~default:true "allow queries during recovery";
        param_int "wal_sender_timeout" ~lo:0 ~hi:3600000 ~default:60000
          "drop unresponsive replication connections";
        param_int "max_wal_senders" ~lo:0 ~hi:262143 ~default:10 "replication slots";
        (* --- hooked but unused in the modelled paths --- *)
        param_int "max_connections" ~lo:1 ~hi:262143 ~default:100 "connection limit";
        param_int "deadlock_timeout" ~lo:1 ~hi:2147483 ~default:1000
          "ms before checking for deadlock";
        param_int "statement_timeout" ~lo:0 ~hi:2147483647 ~default:0
          "abort statements running longer than N ms";
        param_int "idle_in_transaction_session_timeout" ~lo:0 ~hi:2147483647 ~default:0
          "terminate idle transactions";
        param_bool "track_activities" ~default:true "collect command statistics";
        param_bool "track_counts" ~default:true "collect row statistics";
        (* --- not performance-related --- *)
        param_int "port" ~perf:false ~dynamic:false ~lo:1 ~hi:65535 ~default:5432
          "listen port";
        param_enum "listen_addresses" ~perf:false ~values:[ "localhost"; "*" ]
          ~default:"localhost" "addresses to listen on";
        param_enum "log_destination" ~perf:false ~values:[ "stderr"; "csvlog"; "syslog" ]
          ~default:"stderr" "log sink";
        param_bool "logging_collector" ~perf:false ~default:false "capture stderr to files";
        (* --- no hook possible --- *)
        param_enum "timezone" ~hook:No_hook_complex_type ~values:[ "UTC"; "US/Eastern" ]
          ~default:"UTC" "session timezone (complex type)";
        param_enum "datestyle" ~hook:No_hook_complex_type ~values:[ "ISO"; "SQL" ]
          ~default:"ISO" "date rendering (composite type)";
        param_enum "shared_preload_libraries" ~hook:No_hook_function_pointer
          ~values:[ "none"; "pg_stat_statements" ] ~default:"none"
          "preloaded extensions (function-pointer registration)";
      ])

(* encoded workload values *)
let op_select = 0
let op_insert = 1
let op_update = 2
let op_join_select = 3
let op_vacuum = 4

let pgbench =
  Wl.(
    template "pgbench"
      [
        wparam_enum "op" ~values:[ "SELECT"; "INSERT"; "UPDATE"; "JOIN_SELECT"; "VACUUM" ]
          "statement type";
        wparam_int "n_rows" ~lo:1 ~hi:100000 "rows touched";
        wparam_int "row_bytes" ~lo:64 ~hi:1048576 "bytes per row";
        wparam_int "dirty_pages" ~lo:0 ~hi:10000 "pages dirtied since last checkpoint";
        wparam_bool "indexed" "an index covers the predicate";
      ])

let query_entry = "exec_simple_query"

let program =
  let open Vir.Builder in
  program ~name:"postgres" ~entry:"postmaster_main"
    ~globals:[ "plan_seqscan", 0 ]
    [
      func "postmaster_main"
        [
          call "backend_init" [];
          trace_on;
          call "exec_simple_query" [];
          trace_off;
          ret_void;
        ];
      func "backend_init" [ malloc (cfg "shared_buffers" *. i 1048576); compute (i 9000); ret_void ];
      func "exec_simple_query"
        [
          net_recv (i 128);
          call "pg_parse_query" [];
          call "pg_plan_query" [];
          call "portal_run" [];
          call "log_statement_maybe" [];
          net_send (i 256);
          ret_void;
        ];
      func "pg_parse_query" [ compute (i 180); ret_void ];
      func "pg_plan_query"
        [
          compute (cfg "default_statistics_target" /. i 2 +. i 100);
          if_ (cfg "jit" ==. i 1) [ compute (i 2500); malloc (i 65536) ] [];
          if_ (cfg "effective_cache_size" <. i 64) [ compute (i 120) ] [];
          if_ (cfg "seq_page_cost" >=. i 2) [ compute (i 80) ] [];
          if_ (wl "op" ==. i op_join_select)
            [
              (* random_page_cost above ~1.2 makes the planner reject the
                 index path for the join (Table 5) *)
              if_ (cfg "random_page_cost" >. i 2)
                [ setg "plan_seqscan" (i 1) ]
                [ setg "plan_seqscan" (i 0) ];
              compute (i 400);
            ]
            [];
          ret_void;
        ];
      func "portal_run"
        [
          if_ ((wl "op" ==. i op_select) ||. (wl "op" ==. i op_join_select))
            [ call "exec_scan" [] ]
            [
              if_ ((wl "op" ==. i op_insert) ||. (wl "op" ==. i op_update))
                [ call "exec_modify" [] ]
                [ if_ (wl "op" ==. i op_vacuum) [ call "do_vacuum" [] ] [] ];
            ];
          ret_void;
        ];
      (* ---------------- read path ---------------- *)
      func "exec_scan"
        [
          if_ ((wl "op" ==. i op_join_select) &&. (gv "plan_seqscan" ==. i 1))
            [
              call "seq_scan_join" [];
              (* Table 5: leader participation starves workers on big scans *)
              if_
                ((cfg "parallel_leader_participation" ==. i 1)
                &&. (cfg "max_parallel_workers_per_gather" >. i 0))
                [ cond_wait; compute (wl "n_rows") ]
                [];
            ]
            [ call "index_scan" [] ];
          ret_void;
        ];
      func "seq_scan_join"
        [
          pread (wl "n_rows" *. i 256);
          compute (wl "n_rows" *. i 3);
          if_ (wl "n_rows" *. i 8 >. cfg "work_mem" *. i 1024)
            [
              if_ (wl "n_rows" /. i 8 >. cfg "temp_buffers")
                [ pwrite (wl "n_rows" *. i 8); pread (wl "n_rows" *. i 8) ]
                [ buffered_write (wl "n_rows" *. i 8) ];
            ]
            [];
          ret_void;
        ];
      func "index_scan"
        [
          call "buffer_alloc" [];
          if_ (wl "indexed" ==. i 1)
            [ buffered_read (i 8192); compute (wl "n_rows" /. i 4 +. i 60) ]
            [
              if_ (wl "n_rows" *. i 256 >. cfg "shared_buffers" *. i 1048576)
                [ pread (wl "n_rows" *. i 256) ]
                [ buffered_read (wl "n_rows" *. i 256) ];
              compute (wl "n_rows");
            ];
          ret_void;
        ];
      (* ---------------- write path ---------------- *)
      func "exec_modify"
        [
          compute (i 300);
          call "buffer_alloc" [];
          buffered_write (wl "row_bytes");
          call "xlog_insert" [ wl "row_bytes" ];
          call "record_transaction_commit" [];
          call "checkpointer_tick" [];
          call "bgwriter_tick" [];
          ret_void;
        ];
      func "xlog_insert" ~params:[ "len" ]
        [
          log_append (lv "len");
          if_ (lv "len" >. cfg "wal_buffers") [ pwrite (lv "len") ] [];
          if_ (cfg "full_page_writes" ==. i 1)
            [
              if_ (cfg "wal_compression" ==. i 1)
                [ compute (i 800); log_append (i 3072) ]  (* cpu for fewer bytes *)
                [ log_append (i 8192) ];
            ]
            [];
          if_ (cfg "archive_mode" <>. i 0) [ call "archive_segment_maybe" [] ] [];
          ret_void;
        ];
      func "archive_segment_maybe"
        [
          (* a small archive_timeout forces frequent segment switches: each
             switch archives a mostly-empty 16MB segment (c8 + Table 5) *)
          if_ ((cfg "archive_timeout" >. i 0) &&. (cfg "archive_timeout" <=. i 60))
            [ pwrite (i 1048576); net_send (i 1048576) ]
            [
              if_ (wl "n_rows" *. wl "row_bytes" >. i 4194304)
                [ pwrite (i 1048576); net_send (i 1048576) ]
                [ buffered_write (i 2048) ];
            ];
          ret_void;
        ];
      func "record_transaction_commit"
        [
          if_ (cfg "commit_delay" >. i 0) [ cond_wait ] [];
          call "sync_rep_wait" [];
          if_ (cfg "synchronous_commit" <>. i 0)
            [ call "xlog_flush" [] ]
            [
              (* async commit: the statement-log buffer is flushed inline to
                 preserve ordering, so log_statement=mod dominates (Table 5) *)
              call "flush_pending_statement_logs" [];
            ];
          ret_void;
        ];
      (* synchronous replication: the commit blocks on standby ACKs *)
      func "sync_rep_wait"
        [
          if_
            ((cfg "synchronous_standby_names" <>. i 0)
            &&. (cfg "synchronous_commit" >=. i 2))
            [
              net_send (i 512);
              net_recv (i 64);
              if_ (cfg "synchronous_standby_names" ==. i 2) [ net_recv (i 64) ] [];
            ]
            [];
          ret_void;
        ];
      func "xlog_flush"
        [
          if_ (cfg "fsync" ==. i 1)
            [
              if_ (cfg "wal_sync_method" ==. i 3)
                [ pwrite (i 8192); fsync; pwrite (i 8192); fsync; pwrite (i 4096); fsync ]
                  (* open_sync: every WAL write is synchronous — full page,
                     commit record and metadata each pay a device flush *)
                [
                  if_ (cfg "wal_sync_method" ==. i 2)
                    [ pwrite (i 8192); fsync; pwrite (i 4096); fsync ]  (* open_datasync *)
                    [
                      if_ (cfg "wal_sync_method" ==. i 1)
                        [ pwrite (i 8192); buffered_write (i 512); fsync ]  (* fsync *)
                        [ pwrite (i 8192); fsync ];  (* fdatasync *)
                    ];
                ];
            ]
            [ buffered_write (i 8192) ];
          ret_void;
        ];
      func "flush_pending_statement_logs"
        [
          if_ (cfg "log_statement" >=. i 2) [ pwrite (i 1024) ] [];
          ret_void;
        ];
      func "checkpointer_tick"
        [
          (* dirty WAL beyond max_wal_size forces a checkpoint (c9) *)
          if_
            ((wl "dirty_pages" *. i 8192 >. cfg "max_wal_size" *. i 262144)
            ||. (cfg "checkpoint_timeout" <. i 60))
            [ call "do_checkpoint" [] ]
            [ if_ (cfg "min_wal_size" >. i 8192) [ compute (i 40) ] [] ];
          ret_void;
        ];
      func "do_checkpoint"
        [
          pwrite (wl "dirty_pages" *. i 512);
          (* a low completion target compresses the I/O into a burst: writes
             lose coalescing and the device is hit with amplified traffic *)
          if_ (cfg "checkpoint_completion_target" <=. i 1)
            [
              pwrite (wl "dirty_pages" *. i 512);
              pwrite (wl "dirty_pages" *. i 512);
              fsync;
              fsync;
              cond_wait;
            ]
            [ buffered_write (i 8192); fsync ];
          ret_void;
        ];
      func "bgwriter_tick"
        [
          if_ (cfg "bgwriter_delay" >. i 1000) [ pwrite (i 8192) ] [];
          if_ (cfg "bgwriter_lru_multiplier" <=. i 1)
            [ buffered_write (i 8192) ]
            [ buffered_write (i 16384) ];
          ret_void;
        ];
      (* a lagging background writer (low lru multiplier) leaves dirty
         buffers for the backends to evict synchronously (c11) *)
      func "buffer_alloc"
        [
          if_
            ((cfg "bgwriter_lru_multiplier" <=. i 1) &&. (wl "dirty_pages" >. i 512))
            [
              pwrite (wl "dirty_pages" *. i 8);
              if_ (cfg "bgwriter_lru_maxpages" <. wl "dirty_pages")
                [ pwrite (i 8192) ]
                [];
            ]
            [];
          ret_void;
        ];
      (* ---------------- vacuum ---------------- *)
      func "do_vacuum"
        [
          if_ (cfg "autovacuum" ==. i 0) [ compute (i 50) ] [];
          if_ (cfg "maintenance_work_mem" <. i 16384)
            [ pread (wl "n_rows" *. i 96) ]
            [ pread (wl "n_rows" *. i 64) ];
          if_ (cfg "vacuum_cost_limit" <. i 100) [ cond_wait ] [];
          compute (wl "n_rows" *. i 2);
          (* the cost-based delay sleeps between page batches (Table 5) *)
          if_ (cfg "vacuum_cost_delay" >=. i 3)
            [ cond_wait; cond_wait; cond_wait ]
            [
              if_ (cfg "vacuum_cost_delay" >=. i 2)
                [ cond_wait; cond_wait ]
                [ if_ (cfg "vacuum_cost_delay" >=. i 1) [ cond_wait ] [] ];
            ];
          buffered_write (wl "n_rows" *. i 16);
          ret_void;
        ];
      func "log_statement_maybe"
        [
          if_ ((cfg "log_min_duration_statement" >=. i 0)
              &&. (cfg "log_min_duration_statement" <=. i 10))
            [ buffered_write (i 256) ] [];
          if_
            ((cfg "log_statement" ==. i 3)
            ||. ((cfg "log_statement" ==. i 2)
                &&. ((wl "op" ==. i op_insert) ||. (wl "op" ==. i op_update))))
            [ log_append (i 512); buffered_write (i 512) ]
            [];
          ret_void;
        ];
    ]

let target =
  { Violet.Pipeline.name = "postgres"; program; registry; workloads = [ pgbench ] }

let inst overrides = Wl.instantiate_named pgbench overrides

let point_select =
  inst [ "op", "SELECT"; "n_rows", "10"; "row_bytes", "256"; "dirty_pages", "16"; "indexed", "ON" ]

let join_select =
  inst
    [ "op", "JOIN_SELECT"; "n_rows", "20000"; "row_bytes", "256"; "dirty_pages", "16";
      "indexed", "ON" ]

let small_insert =
  inst [ "op", "INSERT"; "n_rows", "1"; "row_bytes", "256"; "dirty_pages", "64"; "indexed", "ON" ]

let small_update =
  inst [ "op", "UPDATE"; "n_rows", "1"; "row_bytes", "256"; "dirty_pages", "64"; "indexed", "ON" ]

let heavy_update =
  inst
    [ "op", "UPDATE"; "n_rows", "100"; "row_bytes", "8192"; "dirty_pages", "4096";
      "indexed", "OFF" ]

let vacuum_op =
  inst
    [ "op", "VACUUM"; "n_rows", "50000"; "row_bytes", "256"; "dirty_pages", "4096";
      "indexed", "OFF" ]

(* the stock pgbench suites black-box testing enumerates *)
let standard_workloads =
  [
    "pgbench_tpcb", [ point_select, 0.4; small_insert, 0.3; small_update, 0.3 ];
    "pgbench_select_only", [ point_select, 0.9; join_select, 0.1 ];
    "pgbench_write_heavy", [ small_insert, 0.4; small_update, 0.3; heavy_update, 0.3 ];
  ]

let validation_workloads =
  [
    "pgbench_join", [ join_select, 1.0 ];
    "pgbench_maintenance", [ vacuum_op, 0.2; small_insert, 0.8 ];
  ]
