module Reg = Vruntime.Config_registry
module Wl = Vruntime.Workload

let mb n = n * 1024 * 1024

let registry =
  Reg.(
    make ~system:"squid"
      [
        (* --- caching (c16) --- *)
        param_enum "cache" ~values:[ "allow_all"; "deny_all"; "deny_large" ]
          ~default:"allow_all"
          "cache ACL: denied requests are never stored in the cache";
        param_int "cache_mem" ~lo:(mb 1) ~hi:(mb 4096) ~default:(mb 256)
          "memory cache size";
        param_int "maximum_object_size" ~lo:0 ~hi:(mb 512) ~default:(mb 4)
          "largest cachable object";
        param_int "maximum_object_size_in_memory" ~lo:0 ~hi:(mb 16) ~default:(512 * 1024)
          "largest object kept in memory";
        param_enum "memory_cache_mode" ~values:[ "always"; "disk"; "network" ]
          ~default:"always" "which hits may use the memory cache";
        param_enum "cache_replacement_policy" ~values:[ "lru"; "heap_gdsf"; "heap_lfuda" ]
          ~default:"lru" "eviction policy";
        (* --- logging (c17, cache_log) --- *)
        param_int "buffered_logs" ~lo:0 ~hi:1 ~default:0
          "accumulate access-log records in larger chunks";
        param_bool "access_log" ~default:true "write an access-log record per request";
        param_bool "cache_log" ~default:true "write the cache.log debug file";
        param_int "debug_options" ~lo:0 ~hi:9 ~default:1
          "cache.log verbosity level (ALL,N)";
        (* --- DNS / ipcache (Table 5) --- *)
        param_int "ipcache_size" ~lo:16 ~hi:65536 ~default:1024
          "entries in the IP resolution cache";
        param_int "ipcache_low" ~lo:1 ~hi:100 ~default:90 "ipcache low-water percent";
        param_int "ipcache_high" ~lo:1 ~hi:100 ~default:95 "ipcache high-water percent";
        param_int "dns_timeout" ~lo:1 ~hi:300 ~default:30 "DNS query timeout seconds";
        param_int "negative_dns_ttl" ~lo:0 ~hi:3600 ~default:60 "cache failed lookups";
        (* --- connections --- *)
        param_bool "client_persistent_connections" ~default:true
          "keep client connections open";
        param_bool "server_persistent_connections" ~default:true
          "keep origin connections open";
        param_int "read_ahead_gap" ~lo:1024 ~hi:(mb 1) ~default:16384
          "prefetch window from origin";
        param_bool "memory_pools" ~default:true "pool allocator for hot objects";
        param_int "quick_abort_min" ~lo:(-1) ~hi:32768 ~default:16
          "KB below which an aborted fetch is completed anyway";
        (* --- hooked but unused in the modelled paths --- *)
        param_int "max_filedescriptors" ~lo:64 ~hi:1048576 ~default:1024 "fd limit";
        param_int "client_lifetime" ~lo:1 ~hi:1440 ~default:1440
          "max client session minutes";
        param_int "pconn_timeout" ~lo:1 ~hi:3600 ~default:120
          "idle persistent-connection timeout";
        param_int "connect_timeout" ~lo:1 ~hi:300 ~default:60 "origin connect timeout";
        param_int "request_header_max_size" ~lo:1024 ~hi:(mb 1) ~default:65536
          "max request header";
        (* --- not performance-related --- *)
        param_int "http_port" ~perf:false ~dynamic:false ~lo:1 ~hi:65535 ~default:3128
          "listen port";
        param_enum "visible_hostname" ~perf:false ~values:[ "proxy"; "cache1" ]
          ~default:"proxy" "hostname in errors";
        param_enum "cache_effective_user" ~perf:false ~values:[ "squid"; "proxy" ]
          ~default:"squid" "worker identity";
        (* --- configured through parser function pointers (Section 4.1) --- *)
        param_enum "cache_dir" ~hook:No_hook_function_pointer
          ~values:[ "ufs"; "aufs"; "rock" ] ~default:"ufs"
          "cache store module (registered via function pointers)";
        param_enum "auth_param" ~hook:No_hook_function_pointer
          ~values:[ "none"; "basic"; "digest" ] ~default:"none" "authentication scheme";
        param_enum "acl" ~hook:No_hook_complex_type ~values:[ "default"; "custom" ]
          ~default:"default" "access control lists (free-form grammar)";
        param_enum "refresh_pattern" ~hook:No_hook_complex_type
          ~values:[ "default"; "aggressive" ] ~default:"default"
          "freshness rules (regex grammar)";
      ])

let proxy =
  Wl.(
    template "proxy"
      [
        wparam_bool "object_cached" "requested object already in the cache";
        wparam_int "object_bytes" ~lo:1024 ~hi:33554432 "object size";
        wparam_bool "repeated_host" "host resolved recently (ipcache candidate)";
        wparam_int "distinct_hosts" ~lo:1 ~hi:100000 "distinct origin hosts in the trace";
      ])

let query_entry = "client_request"

let program =
  let open Vir.Builder in
  program ~name:"squid" ~entry:"squid_main"
    [
      func "squid_main"
        [ call "squid_init" []; trace_on; call "client_request" []; trace_off; ret_void ];
      func "squid_init" [ malloc (cfg "cache_mem"); compute (i 6000); ret_void ];
      func "client_request"
        [
          net_recv (i 256);
          if_ (cfg "request_header_max_size" <. i 8192) [ compute (i 60) ] [];
          if_ (cfg "client_persistent_connections" ==. i 0)
            [ net_send (i 64); net_recv (i 64) ]
            [];
          call "lookup_ipcache" [];
          call "serve_object" [];
          call "write_access_log" [];
          call "write_cache_log" [];
          net_send (wl "object_bytes");
          ret_void;
        ];
      func "lookup_ipcache"
        [
          cache_lookup;
          if_ (cfg "negative_dns_ttl" ==. i 0) [ compute (i 40) ] [];
          (* an undersized ipcache evicts entries before they are reused
             (Table 5): even recently-seen hosts miss *)
          if_
            ((wl "repeated_host" ==. i 0) ||. (wl "distinct_hosts" >. cfg "ipcache_size"))
            [
              dns_lookup;
              if_ (cfg "dns_timeout" <. i 5) [ dns_lookup ] [];  (* retry storm *)
              cache_store;
              if_ (wl "distinct_hosts" *. i 100 >. cfg "ipcache_size" *. cfg "ipcache_high")
                [ cache_store ]  (* high-water eviction *)
                [];
            ]
            [];
          ret_void;
        ];
      func "serve_object"
        [
          call ~dest:"cachable" "cache_acl_allows" [];
          if_ ((wl "object_cached" ==. i 1) &&. (lv "cachable" ==. i 1))
            [ call "serve_from_cache" [] ]
            [
              call "fetch_from_origin" [];
              if_ (lv "cachable" ==. i 1) [ call "store_object" [] ] [];
            ];
          ret_void;
        ];
      func "cache_acl_allows"
        [
          if_ (cfg "cache" ==. i 1)
            [ ret (i 0) ]  (* deny all: nothing is ever stored *)
            [
              if_
                ((cfg "cache" ==. i 2) &&. (wl "object_bytes" >. i 1048576))
                [ ret (i 0) ]
                [
                  if_ (wl "object_bytes" >. cfg "maximum_object_size")
                    [ ret (i 0) ]
                    [ ret (i 1) ];
                ];
            ];
        ];
      func "serve_from_cache"
        [
          cache_lookup;
          if_
            ((cfg "memory_cache_mode" ==. i 0)
            &&. (wl "object_bytes" <. cfg "maximum_object_size_in_memory"))
            [ buffered_read (wl "object_bytes") ]
            [ pread (wl "object_bytes") ];
          ret_void;
        ];
      func "fetch_from_origin"
        [
          if_ (cfg "server_persistent_connections" ==. i 0)
            [ net_send (i 64); net_recv (i 64); compute (i 300) ]
            [];
          net_send (i 256);
          (* response headers arrive a round trip before the body, and the
             body streams in read_ahead_gap windows *)
          net_recv (i 512);
          net_recv (i 1024);
          net_recv (wl "object_bytes");
          if_ (wl "object_bytes" >. cfg "read_ahead_gap") [ cache_lookup; compute (i 500) ] [];
          ret_void;
        ];
      func "store_object"
        [
          cache_store;
          if_ (cfg "memory_pools" ==. i 0) [ malloc (wl "object_bytes") ] [];
          (* tiny objects are fetched to completion even when clients abort *)
          if_ (wl "object_bytes" <. cfg "quick_abort_min" *. i 1024)
            [ compute (i 100) ]
            [];
          if_ (wl "object_bytes" <. cfg "maximum_object_size_in_memory")
            [ buffered_write (wl "object_bytes") ]
            [ pwrite (wl "object_bytes") ];
          ret_void;
        ];
      func "write_access_log"
        [
          if_ (cfg "access_log" ==. i 1)
            [
              (* c17: unbuffered logging issues a write syscall per record *)
              if_ (cfg "buffered_logs" ==. i 1) [ log_append (i 150) ] [ pwrite (i 150) ];
            ]
            [];
          ret_void;
        ];
      func "write_cache_log"
        [
          if_ ((cfg "cache_log" ==. i 1) &&. (cfg "debug_options" >=. i 5))
            [ pwrite (i 2048); buffered_write (i 2048) ]
            [];
          ret_void;
        ];
    ]

let target =
  { Violet.Pipeline.name = "squid"; program; registry; workloads = [ proxy ] }

let inst overrides = Wl.instantiate_named proxy overrides

let hot_object =
  inst
    [ "object_cached", "ON"; "object_bytes", "16384"; "repeated_host", "ON";
      "distinct_hosts", "50" ]

let cold_object =
  inst
    [ "object_cached", "OFF"; "object_bytes", "16384"; "repeated_host", "OFF";
      "distinct_hosts", "5000" ]

let large_object =
  inst
    [ "object_cached", "OFF"; "object_bytes", "8388608"; "repeated_host", "ON";
      "distinct_hosts", "50" ]

let standard_workloads =
  [
    "web_polygraph_hot", [ hot_object, 1.0 ];
    "web_polygraph_cold", [ cold_object, 0.9; large_object, 0.1 ];
    "web_polygraph_mixed", [ hot_object, 0.5; cold_object, 0.4; large_object, 0.1 ];
  ]

let validation_workloads = []
