open Vir.Builder
module Reg = Vruntime.Config_registry
module Wl = Vruntime.Workload

type pattern = {
  id : int;
  name : string;
  description : string;
  target : Violet.Pipeline.target;
  param : string;
  poor : (string * string) list;
  expected_trigger : string;
}

let requests =
  Wl.(template "requests" [ wparam_enum "kind" ~values:[ "READ"; "WRITE" ] "request type" ])

let mk ~id ~name ~description ~registry ~funcs ~param ~poor ~expected_trigger =
  {
    id;
    name;
    description;
    target =
      {
        Violet.Pipeline.name;
        program = program ~name ~entry:"main" funcs;
        registry;
        workloads = [ requests ];
      };
    param;
    poor;
    expected_trigger;
  }

(* pattern 1: the parameter gates an fsync (the autocommit shape) *)
let expensive_operation =
  mk ~id:1 ~name:"pat_expensive"
    ~description:"parameter causes an expensive operation (fsync) to execute"
    ~registry:
      Reg.(make ~system:"pat_expensive" [ param_bool "durable" ~default:true "flush on write" ])
    ~funcs:
      [
        func "main"
          [
            when_ (wl "kind" ==. i 1)
              [ buffered_write (i 512); when_ (cfg "durable" ==. i 1) [ fsync ] ];
            ret_void;
          ];
      ]
    ~param:"durable" ~poor:[ "durable", "ON" ] ~expected_trigger:"Lat."

(* pattern 2: extra synchronization that is cheap itself but serializes the
   system (the query_cache_wlock_invalidate shape) *)
let extra_synchronization =
  mk ~id:2 ~name:"pat_sync"
    ~description:"parameter adds synchronization that decreases concurrency"
    ~registry:
      Reg.(
        make ~system:"pat_sync"
          [ param_bool "strict_order" ~default:false "serialize request handling" ])
    ~funcs:
      [
        func "main"
          [
            when_ (cfg "strict_order" ==. i 1) [ mutex_lock; cond_wait; mutex_unlock ];
            compute (i 300);
            ret_void;
          ];
      ]
    ~param:"strict_order" ~poor:[ "strict_order", "ON" ] ~expected_trigger:"Sync."

(* pattern 3: the parameter routes execution away from the cached result
   (the query_cache_type / squid cache-deny shape) *)
let slow_path =
  mk ~id:3 ~name:"pat_slowpath"
    ~description:"parameter directs execution to a slow path (cache bypass)"
    ~registry:
      Reg.(
        make ~system:"pat_slowpath"
          [ param_bool "bypass_cache" ~default:false "always recompute" ])
    ~funcs:
      [
        func "main"
          [
            if_ (cfg "bypass_cache" ==. i 1)
              [ call "recompute" [] ]
              [ cache_lookup; buffered_read (i 256) ];
            ret_void;
          ];
        func "recompute" [ compute (i 40000); pread (i 65536); ret_void ];
      ]
    ~param:"bypass_cache" ~poor:[ "bypass_cache", "ON" ] ~expected_trigger:"Lat."

(* pattern 4: the parameter sets a threshold that workloads cross frequently
   (the innodb_log_buffer_size shape) *)
let threshold_crossing =
  let t =
    Wl.(
      template "records"
        [ wparam_int "record_bytes" ~lo:64 ~hi:1048576 "bytes appended per request" ])
  in
  let p =
    {
      id = 4;
      name = "pat_threshold";
      description = "parameter sets a threshold whose frequent crossing is costly";
      target =
        {
          Violet.Pipeline.name = "pat_threshold";
          program =
            program ~name:"pat_threshold" ~entry:"main"
              [
                func "main"
                  [
                    when_
                      (wl "record_bytes" >. cfg "buffer_bytes" /. i 2)
                      [ call "flush_buffer" [] ];
                    log_append (wl "record_bytes");
                    ret_void;
                  ];
                func "flush_buffer" [ pwrite (i 16384); fsync; ret_void ];
              ];
          registry =
            Reg.(
              make ~system:"pat_threshold"
                [
                  param_int "buffer_bytes" ~lo:4096 ~hi:(64 * 1024 * 1024)
                    ~default:(8 * 1024 * 1024) "staging buffer size";
                ]);
          workloads = [ t ];
        };
      param = "buffer_bytes";
      poor = [ "buffer_bytes", "4096" ];
      expected_trigger = "Lat.";
    }
  in
  p

let all = [ expensive_operation; extra_synchronization; slow_path; threshold_crossing ]
