(** Executable performance model of MySQL 5.5 (paper Sections 2 and 7).

    The program reproduces, at the control-flow level, the code paths behind
    the paper's MySQL case studies:

    - Figure 3: [write_row] → [trx_commit_complete] → [log_write_up_to] /
      [fil_flush], steered by [autocommit] and
      [innodb_flush_log_at_trx_commit] (case c1);
    - Figure 4: the query cache, [LOCK TABLES], and
      [query_cache_wlock_invalidate] (c2), plus the query-cache contention
      behind [query_cache_type] (c4);
    - Figure 5: [log_reserve_and_open] and the [innodb_log_buffer_size]
      threshold crossings (c6);
    - the general log (c3), binary log syncing via [sync_binlog] (c5), and
      the two unknown-specious parameters of Table 5
      ([optimizer_search_depth], [concurrent_insert]).

    The registry also carries parameters that are not performance-related,
    not hookable, or unused — the population the coverage experiment
    (Table 6) measures against. *)

val registry : Vruntime.Config_registry.t
val oltp : Vruntime.Workload.template
(** The sysbench-like workload template: query type, storage engine, row
    size, scan size, join width, cache-hit and concurrency indicators. *)

val program : Vir.Ast.program
(** MySQL 5.5, the paper's evaluated version. *)

val program_56 : Vir.Ast.program
(** A 5.6-like build: binlog group commit fixed, query-cache contention
    worse — the substrate for the checker's code-upgrade mode. *)

val target : Violet.Pipeline.target
val target_56 : Violet.Pipeline.target

val query_entry : string
(** Entry function measuring a single command, excluding server start-up —
    what concrete throughput runs should execute per operation. *)

val normal_mix : autocommit:bool -> (Vruntime.Workload.instance * float) list
(** Figure 2(a): 70% read / 20% write / 10% other.  sysbench keeps the same
    transaction boundaries in both modes (explicit [COMMIT]s when
    autocommit is off), so the throughput difference is small. *)

val insert_mix : autocommit:bool -> (Vruntime.Workload.instance * float) list
(** Figure 2(b): insert-intensive.  With [autocommit:false] the mix batches
    an explicit [COMMIT] after every 5 inserts, the recommended fix. *)

val standard_workloads : (string * (Vruntime.Workload.instance * float) list) list
(** The stock sysbench suites black-box testing enumerates in the
    Section 7.3 comparison. *)

val validation_workloads : (string * (Vruntime.Workload.instance * float) list) list
(** Mixes that only Violet's input predicates point the operator to (large
    rows, MyISAM lock contention); not part of stock benchmark suites. *)
