(** Executable performance model of Squid 4.1 (paper Section 7).

    Covers the [cache] deny ACL (c16: denied requests are never stored, so
    every request pays the origin round trip) and [buffered_logs] (c17),
    plus Table 5's [ipcache_size] (a small IP cache forces repeated DNS) and
    [cache_log] with a high [debug_options] level. *)

val registry : Vruntime.Config_registry.t
val proxy : Vruntime.Workload.template
val program : Vir.Ast.program
val target : Violet.Pipeline.target
val query_entry : string
val standard_workloads : (string * (Vruntime.Workload.instance * float) list) list
val validation_workloads : (string * (Vruntime.Workload.instance * float) list) list
