(** Discovery of control-dependent related parameters (paper Section 4.3,
    Algorithms 1 and 2).

    For a target parameter [p], two kinds of related parameters are put in
    its symbolic set:

    - {e enabler parameters}: parameters [q] such that some usage of [p] is
      control dependent on a use of [q] — either inside the same function,
      or because a call site on the chain from the entry function to [p]'s
      usage function is guarded by [q];
    - {e influenced parameters}: parameters whose own enabler set contains
      [p].

    The control-dependency notion is the paper's {e broadened} one: lexical
    nesting under a branch condition, closed over simple data flow
    ({!Usage}).  The result over-approximates, which is the safe direction —
    a spurious related parameter costs some exploration time but does not
    change conclusions (Section 4.3). *)

type result = {
  target : string;
  enablers : string list;
  influenced : string list;
  related : string list;  (** enablers ∪ influenced, sorted, without target *)
}

val enabler_set : Vir.Ast.program -> Usage.t -> Vir.Callgraph.t -> string -> string list
(** Algorithm 2: [GetEnablerConfig]. *)

val analyze :
  ?usage:Usage.t -> ?callgraph:Vir.Callgraph.t -> Vir.Ast.program -> string -> result
(** Algorithm 1 for one target parameter. *)

val analyze_all : Vir.Ast.program -> (string * result) list
(** Algorithm 1 for every parameter read by the program; shares one pass of
    the expensive sub-analyses. *)
