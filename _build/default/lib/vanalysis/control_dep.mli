(** Control dependency, classic and broadened (paper Section 4.3).

    The classic Ferrante–Ottenstein–Warren definition is computed from
    postdominators on the function CFG.  The paper broadens it: in

    {[
      if (a) { if (b) { if (c) { if (d) {} } } }   (* snippet 1 *)
      if (a) { if (b) {} if (c) {} if (d) {} }     (* snippet 2 *)
    ]}

    the classic definition does not make the [d] test of snippet 1 control
    dependent on [a] (only on [c]); Violet's broadened notion — lexical
    nesting — makes every inner test dependent on every enclosing one in
    both snippets.  The broadened relation is what {!Related_config} uses;
    the classic one is exposed for comparison and tests. *)

val classic : Vir.Cfg.t -> on:int -> int -> bool
(** [classic cfg ~on:x y] — node [y] is control dependent on branch node [x]
    by the postdominator criterion. *)

val classic_pairs : Vir.Cfg.t -> (int * int) list
(** All [(branch, dependent)] node pairs of the function under the classic
    definition. *)

val broadened_pairs : Vir.Ast.func -> (int * int) list
(** All [(branch, dependent)] pairs under lexical nesting, using the same
    node numbering as {!Vir.Cfg.of_func} (pre-order of statement nodes). *)
