module Sset = Set.Make (String)

type result = {
  target : string;
  enablers : string list;
  influenced : string list;
  related : string list;
}

(* Algorithm 2.  For each usage of [p] (in function [f]), walk every call
   chain entry -> ... -> f.  In each chain function [g], any parameter [q]
   guarding either the chain's call site in [g] (g <> f) or the usage site
   itself (g = f) is an enabler of [p]. *)
let enabler_set (program : Vir.Ast.program) usage callgraph p =
  let acc = ref Sset.empty in
  let add q = if not (String.equal q p) then acc := Sset.add q !acc in
  let usage_funcs = Usage.usage_functions usage p in
  List.iter
    (fun f ->
      (* guards of the usage sites inside f *)
      List.iter (List.iter add) (Usage.usage_guards usage ~func:f ~param:p);
      (* guards of the call sites along each chain from the entry *)
      let chains = Vir.Callgraph.paths_to callgraph ~entry:program.Vir.Ast.entry f in
      List.iter
        (fun chain ->
          let rec walk = function
            | g :: (next :: _ as rest) ->
              List.iter (List.iter add) (Usage.call_site_guards usage ~func:g ~callee:next);
              walk rest
            | [ _ ] | [] -> ()
          in
          walk chain)
        chains)
    usage_funcs;
  Sset.elements !acc

let analyze_with program usage callgraph enablers_of target =
  let enablers = enablers_of target in
  let influenced =
    List.filter_map
      (fun q ->
        if String.equal q target then None
        else if List.mem target (enablers_of q) then Some q
        else None)
      (Usage.all_params usage)
  in
  let related =
    Sset.elements (Sset.remove target (Sset.of_list (enablers @ influenced)))
  in
  ignore program;
  ignore callgraph;
  { target; enablers; influenced; related }

let analyze ?usage ?callgraph program target =
  let usage = match usage with Some u -> u | None -> Usage.analyze program in
  let callgraph = match callgraph with Some c -> c | None -> Vir.Callgraph.build program in
  let cache = Hashtbl.create 16 in
  let enablers_of p =
    match Hashtbl.find_opt cache p with
    | Some e -> e
    | None ->
      let e = enabler_set program usage callgraph p in
      Hashtbl.add cache p e;
      e
  in
  analyze_with program usage callgraph enablers_of target

let analyze_all program =
  let usage = Usage.analyze program in
  let callgraph = Vir.Callgraph.build program in
  let cache = Hashtbl.create 64 in
  let enablers_of p =
    match Hashtbl.find_opt cache p with
    | Some e -> e
    | None ->
      let e = enabler_set program usage callgraph p in
      Hashtbl.add cache p e;
      e
  in
  List.map
    (fun p -> p, analyze_with program usage callgraph enablers_of p)
    (Usage.all_params usage)
