(** Configuration-usage analysis: where parameters are read, directly or
    through simple data flow.

    The paper's analysis "also captures control dependency that involves
    simple data flow" (Section 4.3) — e.g. a branch on
    [m_cache_is_disabled], a variable assigned from [query_cache_type], is a
    usage of [query_cache_type].  This module computes, by a whole-program
    taint fixpoint, which configuration parameters flow into each global,
    each local, and each function's return value, and from that the
    parameter set used by every branch condition and the {e guard set}
    (parameters read by enclosing branch conditions) of every call site and
    usage site. *)

type t

val analyze : Vir.Ast.program -> t

val branch_params : t -> func:string -> string list
(** Parameters used (directly or via taint) by some branch condition of the
    function, without duplicates. *)

val usage_functions : t -> string -> string list
(** Functions containing at least one usage (read, tainted read, or guarded
    branch) of the parameter. *)

val usage_guards : t -> func:string -> param:string -> string list list
(** For each usage site of [param] inside [func], the set of {e other}
    parameters appearing in enclosing branch conditions (the broadened
    control-dependency guards). *)

val call_site_guards : t -> func:string -> callee:string -> string list list
(** For each call site of [callee] inside [func], the parameters of the
    enclosing branch conditions. *)

val return_taint : t -> string -> string list
(** Parameters that may flow into the function's return value. *)

val all_params : t -> string list
(** Every configuration parameter read anywhere in the program. *)
