let classic cfg ~on y =
  let pd = Vir.Postdom.compute cfg in
  Vir.Postdom.control_dependent pd cfg ~on y

let classic_pairs cfg =
  let pd = Vir.Postdom.compute cfg in
  let branches = Vir.Cfg.branch_nodes cfg in
  List.concat_map
    (fun (b : Vir.Cfg.node) ->
      Array.to_list cfg.Vir.Cfg.nodes
      |> List.filter_map (fun (n : Vir.Cfg.node) ->
             if n.Vir.Cfg.id <> b.Vir.Cfg.id
                && n.Vir.Cfg.stmt <> None
                && Vir.Postdom.control_dependent pd cfg ~on:b.Vir.Cfg.id n.Vir.Cfg.id
             then Some (b.Vir.Cfg.id, n.Vir.Cfg.id)
             else None))
    branches

(* Mirror Cfg.of_func's node numbering (entry=0, exit=1, then statement nodes
   in visit order) and record, for every node, the ids of its lexically
   enclosing branch nodes. *)
let broadened_pairs (f : Vir.Ast.func) =
  let next_id = ref 2 in
  let pairs = ref [] in
  let fresh () =
    let id = !next_id in
    incr next_id;
    id
  in
  let rec go enclosing block =
    List.iter
      (fun (stmt : Vir.Ast.stmt) ->
        let id = fresh () in
        List.iter (fun b -> pairs := (b, id) :: !pairs) enclosing;
        match stmt with
        | Vir.Ast.If (_, t, e) ->
          go (id :: enclosing) t;
          go (id :: enclosing) e
        | Vir.Ast.While (_, b) -> go (id :: enclosing) b
        | Vir.Ast.Assign _ | Vir.Ast.Call _ | Vir.Ast.Return _ | Vir.Ast.Prim _
        | Vir.Ast.Thread _ | Vir.Ast.Trace_on | Vir.Ast.Trace_off ->
          ())
      block
  in
  go [] (Vir.Ast.func_body f);
  List.rev !pairs
