lib/vanalysis/related_config.ml: Hashtbl List Set String Usage Vir
