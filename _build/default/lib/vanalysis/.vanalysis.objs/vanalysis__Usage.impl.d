lib/vanalysis/usage.ml: Hashtbl List Map Set String Vir Vsmt
