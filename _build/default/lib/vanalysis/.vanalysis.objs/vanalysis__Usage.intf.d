lib/vanalysis/usage.mli: Vir
