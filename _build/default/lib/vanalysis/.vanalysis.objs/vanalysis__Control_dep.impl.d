lib/vanalysis/control_dep.ml: Array List Vir
