lib/vanalysis/related_config.mli: Usage Vir
