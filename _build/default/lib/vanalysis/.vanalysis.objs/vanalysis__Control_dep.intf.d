lib/vanalysis/control_dep.mli: Vir
