open Vir.Ast
module Sset = Set.Make (String)
module Smap = Map.Make (String)

type t = {
  branch_params_by_func : Sset.t Smap.t;
  usage_funcs_by_param : Sset.t Smap.t;
  usage_guards_tbl : (string * string, string list list) Hashtbl.t;
  call_guards_tbl : (string * string, string list list) Hashtbl.t;
  return_taint_by_func : Sset.t Smap.t;
  params : Sset.t;
}

let find_set key m = match Smap.find_opt key m with Some s -> s | None -> Sset.empty

(* ------------------------------------------------------------------ *)
(* Phase 1: taint fixpoint.  For each function: which params flow into  *)
(* each local, each global, and the function's return value.           *)
(* ------------------------------------------------------------------ *)

let run_taint (p : program) =
  let globals = ref Smap.empty and returns = ref Smap.empty in
  let locals = ref Smap.empty in
  let locals_of fname =
    match Smap.find_opt fname !locals with Some m -> m | None -> Smap.empty
  in
  let changed = ref true in
  let taint_of_expr fname e =
    let rec go acc = function
      | Const _ | Workload _ -> acc
      | Config prm -> Sset.add prm acc
      | Local n -> Sset.union acc (find_set n (locals_of fname))
      | Global n -> Sset.union acc (find_set n !globals)
      | Not e | Neg e -> go acc e
      | Binop (_, a, b) -> go (go acc a) b
      | Ite (c, a, b) -> go (go (go acc c) a) b
    in
    go Sset.empty e
  in
  let set_local fname n s =
    let m = locals_of fname in
    let cur = find_set n m in
    if not (Sset.subset s cur) then begin
      locals := Smap.add fname (Smap.add n (Sset.union cur s) m) !locals;
      changed := true
    end
  in
  let set_global n s =
    let cur = find_set n !globals in
    if not (Sset.subset s cur) then begin
      globals := Smap.add n (Sset.union cur s) !globals;
      changed := true
    end
  in
  let set_return fname s =
    let cur = find_set fname !returns in
    if not (Sset.subset s cur) then begin
      returns := Smap.add fname (Sset.union cur s) !returns;
      changed := true
    end
  in
  let process_func (f : func) =
    let fname = f.fname in
    let rec go_block block = List.iter go_stmt block
    and go_stmt = function
      | Assign (Lv_local n, e) -> set_local fname n (taint_of_expr fname e)
      | Assign (Lv_global n, e) -> set_global n (taint_of_expr fname e)
      | If (_, t, e) -> go_block t; go_block e
      | While (_, b) -> go_block b
      | Call { dest = Some d; fn; args; _ } ->
        let arg_taint =
          List.fold_left (fun acc a -> Sset.union acc (taint_of_expr fname a)) Sset.empty args
        in
        set_local fname d (Sset.union (find_set fn !returns) arg_taint)
      | Call { dest = None; _ } -> ()
      | Return (Some e) -> set_return fname (taint_of_expr fname e)
      | Return None | Prim _ | Thread _ | Trace_on | Trace_off -> ()
    in
    go_block (func_body f)
  in
  let rounds = ref 0 in
  while !changed && !rounds < 32 do
    changed := false;
    incr rounds;
    List.iter process_func p.funcs
  done;
  let taint_of fname e =
    let rec go acc = function
      | Const _ | Workload _ -> acc
      | Config prm -> Sset.add prm acc
      | Local n -> Sset.union acc (find_set n (locals_of fname))
      | Global n -> Sset.union acc (find_set n !globals)
      | Not e | Neg e -> go acc e
      | Binop (_, a, b) -> go (go acc a) b
      | Ite (c, a, b) -> go (go (go acc c) a) b
    in
    go Sset.empty e
  in
  taint_of, !returns

(* ------------------------------------------------------------------ *)
(* Phase 2: guard walk.                                                *)
(* ------------------------------------------------------------------ *)

let analyze (p : program) =
  let taint_of, returns = run_taint p in
  let branch_params_by_func = ref Smap.empty in
  let usage_funcs_by_param = ref Smap.empty in
  let usage_guards_tbl = Hashtbl.create 64 in
  let call_guards_tbl = Hashtbl.create 64 in
  let all_params = ref Sset.empty in
  let note_branch fname params =
    branch_params_by_func :=
      Smap.add fname (Sset.union params (find_set fname !branch_params_by_func))
        !branch_params_by_func
  in
  let note_usage fname param guards =
    all_params := Sset.add param !all_params;
    usage_funcs_by_param :=
      Smap.add param (Sset.add fname (find_set param !usage_funcs_by_param))
        !usage_funcs_by_param;
    let key = fname, param in
    let cur = match Hashtbl.find_opt usage_guards_tbl key with Some l -> l | None -> [] in
    Hashtbl.replace usage_guards_tbl key (cur @ [ guards ])
  in
  let note_call fname callee guards =
    let key = fname, callee in
    let cur = match Hashtbl.find_opt call_guards_tbl key with Some l -> l | None -> [] in
    Hashtbl.replace call_guards_tbl key (cur @ [ guards ])
  in
  let process_func (f : func) =
    let fname = f.fname in
    (* [guards] is the param set of enclosing branch conditions *)
    let rec go_block guards block = List.iter (go_stmt guards) block
    and exprs_of_stmt = function
      | Assign (_, e) -> [ e ]
      | If (c, _, _) | While (c, _) -> [ c ]
      | Call { args; _ } -> args
      | Return (Some e) -> [ e ]
      | Prim (_, args) -> args
      | Return None | Thread _ | Trace_on | Trace_off -> []
    and go_stmt guards stmt =
      let guard_list guards param = Sset.elements (Sset.remove param guards) in
      let note_all guards params =
        Sset.iter (fun prm -> note_usage fname prm (guard_list guards prm)) params
      in
      (* Short-circuit conjunctions nest: in [if (a && b)] the [b] test only
         runs when [a] held, so params of later conjuncts are guarded by
         params of earlier ones (the paper's c2 pattern, where
         query_cache_wlock_invalidate is tested after query_cache_type). *)
      let note_condition guards c =
        let rec conjuncts acc = function
          | Binop (Vsmt.Expr.And, a, b) -> conjuncts (conjuncts acc a) b
          | e -> acc @ [ e ]
        in
        let all_params =
          List.fold_left
            (fun (guards, all) conj ->
              let params = taint_of fname conj in
              note_all guards params;
              Sset.union guards params, Sset.union all params)
            (guards, Sset.empty) (conjuncts [] c)
        in
        snd all_params
      in
      match stmt with
      | If (c, t, e) ->
        let cond_params = note_condition guards c in
        note_branch fname cond_params;
        let inner = Sset.union guards cond_params in
        go_block inner t;
        go_block inner e
      | While (c, b) ->
        let cond_params = note_condition guards c in
        note_branch fname cond_params;
        go_block (Sset.union guards cond_params) b
      | Call { fn; _ } as s ->
        List.iter (fun e -> note_all guards (taint_of fname e)) (exprs_of_stmt s);
        note_call fname fn (Sset.elements guards)
      | (Assign _ | Return _ | Prim _ | Thread _ | Trace_on | Trace_off) as s ->
        List.iter (fun e -> note_all guards (taint_of fname e)) (exprs_of_stmt s)
    in
    go_block Sset.empty (func_body f)
  in
  List.iter process_func p.funcs;
  {
    branch_params_by_func = !branch_params_by_func;
    usage_funcs_by_param = !usage_funcs_by_param;
    usage_guards_tbl;
    call_guards_tbl;
    return_taint_by_func = returns;
    params = !all_params;
  }

let branch_params t ~func = Sset.elements (find_set func t.branch_params_by_func)
let usage_functions t param = Sset.elements (find_set param t.usage_funcs_by_param)

let usage_guards t ~func ~param =
  match Hashtbl.find_opt t.usage_guards_tbl (func, param) with Some l -> l | None -> []

let call_site_guards t ~func ~callee =
  match Hashtbl.find_opt t.call_guards_tbl (func, callee) with Some l -> l | None -> []

let return_taint t fname = Sset.elements (find_set fname t.return_taint_by_func)
let all_params t = Sset.elements t.params
