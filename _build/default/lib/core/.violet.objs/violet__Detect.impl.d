lib/core/detect.ml: List Pipeline String Vmodel Vruntime Vsmt
