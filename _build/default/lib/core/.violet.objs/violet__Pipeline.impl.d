lib/core/pipeline.ml: List Printf String Unix Vanalysis Vir Vmodel Vruntime Vsymexec Vtrace
