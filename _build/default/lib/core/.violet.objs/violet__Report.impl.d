lib/core/report.ml: Fmt Hashtbl List Pipeline Printf String Vanalysis Vmodel Vsymexec
