lib/core/validate.ml: List Pipeline Vmodel Vruntime Vsmt
