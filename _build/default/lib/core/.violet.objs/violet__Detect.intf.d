lib/core/detect.mli: Pipeline Vmodel Vruntime
