lib/core/validate.mli: Pipeline Vmodel Vruntime
