lib/core/pipeline.mli: Vanalysis Vir Vmodel Vruntime Vsymexec
