lib/core/report.mli: Fmt Pipeline
