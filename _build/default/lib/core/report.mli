(** Human-readable rendering of analysis results, used by the CLI, the
    examples and the benchmark harness. *)

val pp_analysis : Pipeline.analysis Fmt.t
(** Full report: related parameters, exploration statistics, the cost table
    with poor states marked, and each suspicious pair with its differential
    critical path. *)

val pp_summary : Pipeline.analysis Fmt.t
(** One-line Table 4 style summary: detected?, explored/poor states, related
    config count, cost metrics, analysis time, max diff. *)

val summary_row : Pipeline.analysis -> string list
(** The Table 4 columns as strings: explored states, poor states, related
    configs, cost-metric label, virtual analysis time, max diff. *)

val human_time : float -> string
(** Seconds to a ["6 m 25 s"]-style string. *)
