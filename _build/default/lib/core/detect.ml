let full_assignment registry setting =
  let values =
    List.fold_left
      (fun values (name, v) -> Vruntime.Config_registry.Values.set_str values name v)
      (Vruntime.Config_registry.Values.defaults registry)
      setting
  in
  Vruntime.Config_registry.Values.bindings values

let mentions_target target (row : Vmodel.Cost_row.t) =
  List.exists
    (fun c ->
      List.exists
        (fun (v : Vsmt.Expr.var) -> String.equal v.Vsmt.Expr.name target)
        (Vsmt.Expr.vars c))
    row.Vmodel.Cost_row.config_constraints

let poor_rows_for registry (a : Pipeline.analysis) ~poor =
  let assignment = full_assignment registry poor in
  let model = a.Pipeline.model in
  Vmodel.Impact_model.poor_rows model
  |> List.filter (fun row ->
         mentions_target model.Vmodel.Impact_model.target row
         && Vmodel.Cost_row.satisfied_by row assignment)

let detected registry a ~poor = poor_rows_for registry a ~poor <> []
