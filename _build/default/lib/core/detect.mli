(** Case-level detection verdicts (paper Section 7.2).

    "A case is detected when Violet explores at least one poor state in its
    trace {e and} the poor states enclose the problematic parameter
    value(s)." — the poor configuration assignment must satisfy the
    configuration constraints of some poor state whose constraints actually
    involve the target parameter. *)

val full_assignment :
  Vruntime.Config_registry.t -> (string * string) list -> (string * int) list
(** Registry defaults overridden by the given ["param", "value"] pairs;
    raises [Failure] on invalid values. *)

val poor_rows_for :
  Vruntime.Config_registry.t ->
  Pipeline.analysis ->
  poor:(string * string) list ->
  Vmodel.Cost_row.t list
(** The poor states enclosing the given (partial) setting. *)

val detected :
  Vruntime.Config_registry.t -> Pipeline.analysis -> poor:(string * string) list -> bool
