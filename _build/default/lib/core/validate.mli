(** Native validation of suspicious state pairs.

    The sensitivity (Figure 15) and false-positive (Section 7.8) experiments
    check each reported poor pair against ground truth by running benchmarks
    natively: solve the pair's joint input predicate for a common concrete
    workload, solve each state's configuration constraints under that
    workload, run both configurations concretely, and compare. *)

type verdict = {
  native_slow_us : float;
  native_fast_us : float;
  ratio : float;  (** slow / fast native latency *)
  slow_cost : Vruntime.Cost.t;
  fast_cost : Vruntime.Cost.t;
}

val pair_ratio :
  ?env:Vruntime.Hw_env.t ->
  target:Pipeline.target ->
  entry:string ->
  slow:Vmodel.Cost_row.t ->
  fast:Vmodel.Cost_row.t ->
  unit ->
  verdict option
(** [None] when the two states share no input class or a constraint set is
    unsolvable. *)

val confirms :
  ?env:Vruntime.Hw_env.t ->
  threshold:float ->
  target:Pipeline.target ->
  entry:string ->
  Vmodel.Diff_analysis.poor_pair ->
  bool option
(** Does the native run confirm the reported difference at the threshold?
    A pair whose native relative difference stays below the threshold is a
    false positive.  [None] when the pair cannot be validated natively. *)
