module M = Vmodel.Impact_model
module Ex = Vsymexec.Executor

let human_time s =
  if s >= 60. then Printf.sprintf "%d m %d s" (int_of_float s / 60) (int_of_float s mod 60)
  else Printf.sprintf "%.1f s" s

let dominant_trigger (a : Pipeline.analysis) =
  match a.Pipeline.model.M.poor_pairs with
  | [] -> "-"
  | pairs ->
    let tbl = Hashtbl.create 4 in
    List.iter
      (fun (p : M.poor_pair_summary) ->
        Hashtbl.replace tbl p.M.trigger
          (1 + match Hashtbl.find_opt tbl p.M.trigger with Some n -> n | None -> 0))
      pairs;
    fst
      (Hashtbl.fold
         (fun k v (bk, bv) -> if v > bv then (k, v) else (bk, bv))
         tbl ("-", 0))

let summary_row (a : Pipeline.analysis) =
  let m = a.Pipeline.model in
  [
    string_of_int m.M.explored_states;
    string_of_int (List.length m.M.poor_state_ids);
    string_of_int (List.length m.M.related);
    dominant_trigger a;
    human_time m.M.virtual_analysis_s;
    Printf.sprintf "%.1fx" m.M.max_ratio;
  ]

let pp_summary ppf (a : Pipeline.analysis) =
  let m = a.Pipeline.model in
  Fmt.pf ppf "%s/%s: %d states explored, %d poor, %d related, %s, %s, max diff %.1fx"
    m.M.system m.M.target m.M.explored_states
    (List.length m.M.poor_state_ids)
    (List.length m.M.related) (dominant_trigger a)
    (human_time m.M.virtual_analysis_s)
    m.M.max_ratio

let pp_analysis ppf (a : Pipeline.analysis) =
  let m = a.Pipeline.model in
  let r = a.Pipeline.related in
  Fmt.pf ppf "=== Violet analysis: %s / %s ===@." m.M.system m.M.target;
  Fmt.pf ppf "enabler params:    [%s]@."
    (String.concat ", " r.Vanalysis.Related_config.enablers);
  Fmt.pf ppf "influenced params: [%s]@."
    (String.concat ", " r.Vanalysis.Related_config.influenced);
  Fmt.pf ppf "symbolic set:      [%s]@." (String.concat ", " m.M.related);
  let st = a.Pipeline.result.Ex.stats in
  Fmt.pf ppf
    "exploration: %d states (%d terminated, %d killed), %d forks, %d solver calls@."
    st.Ex.states_created st.Ex.states_terminated st.Ex.states_killed st.Ex.forks
    st.Ex.solver_calls;
  Fmt.pf ppf "%a" M.pp_cost_table m;
  if m.M.poor_pairs = [] then Fmt.pf ppf "no suspicious state pairs@."
  else begin
    Fmt.pf ppf "%d suspicious pair(s):@." (List.length m.M.poor_pairs);
    List.iter
      (fun (p : M.poor_pair_summary) ->
        Fmt.pf ppf "  state %d vs %d: %.1fx (%s), critical path: %s@." p.M.slow_id
          p.M.fast_id p.M.latency_ratio p.M.trigger
          (match p.M.critical_path with
          | [] -> "-"
          | cp -> String.concat " -> " cp))
      m.M.poor_pairs
  end;
  Fmt.pf ppf "analysis time: wall %.2f s, virtual %s@." m.M.analysis_wall_s
    (human_time m.M.virtual_analysis_s)
