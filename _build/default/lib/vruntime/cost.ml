type t = {
  latency_us : float;
  instructions : int;
  syscalls : int;
  io_calls : int;
  io_bytes : int;
  sync_ops : int;
  net_ops : int;
  allocations : int;
  cache_ops : int;
}

let zero =
  {
    latency_us = 0.;
    instructions = 0;
    syscalls = 0;
    io_calls = 0;
    io_bytes = 0;
    sync_ops = 0;
    net_ops = 0;
    allocations = 0;
    cache_ops = 0;
  }

let add a b =
  {
    latency_us = a.latency_us +. b.latency_us;
    instructions = a.instructions + b.instructions;
    syscalls = a.syscalls + b.syscalls;
    io_calls = a.io_calls + b.io_calls;
    io_bytes = a.io_bytes + b.io_bytes;
    sync_ops = a.sync_ops + b.sync_ops;
    net_ops = a.net_ops + b.net_ops;
    allocations = a.allocations + b.allocations;
    cache_ops = a.cache_ops + b.cache_ops;
  }

let sub a b =
  {
    latency_us = a.latency_us -. b.latency_us;
    instructions = a.instructions - b.instructions;
    syscalls = a.syscalls - b.syscalls;
    io_calls = a.io_calls - b.io_calls;
    io_bytes = a.io_bytes - b.io_bytes;
    sync_ops = a.sync_ops - b.sync_ops;
    net_ops = a.net_ops - b.net_ops;
    allocations = a.allocations - b.allocations;
    cache_ops = a.cache_ops - b.cache_ops;
  }

let latency us = { zero with latency_us = us }

let scale k a =
  {
    latency_us = float_of_int k *. a.latency_us;
    instructions = k * a.instructions;
    syscalls = k * a.syscalls;
    io_calls = k * a.io_calls;
    io_bytes = k * a.io_bytes;
    sync_ops = k * a.sync_ops;
    net_ops = k * a.net_ops;
    allocations = k * a.allocations;
    cache_ops = k * a.cache_ops;
  }

let logical_metrics =
  [
    "instructions", (fun c -> float_of_int c.instructions);
    "syscalls", (fun c -> float_of_int c.syscalls);
    "io_calls", (fun c -> float_of_int c.io_calls);
    "io_bytes", (fun c -> float_of_int c.io_bytes);
    "sync_ops", (fun c -> float_of_int c.sync_ops);
    "net_ops", (fun c -> float_of_int c.net_ops);
    "allocations", (fun c -> float_of_int c.allocations);
    "cache_ops", (fun c -> float_of_int c.cache_ops);
  ]

let metric c = function
  | "latency_us" -> c.latency_us
  | name -> (
    match List.assoc_opt name logical_metrics with
    | Some f -> f c
    | None -> invalid_arg ("Cost.metric: unknown metric " ^ name))

let metric_names = "latency_us" :: List.map fst logical_metrics

let human_count n =
  let f = float_of_int n in
  if n >= 1_000_000 then Printf.sprintf "%.1fM" (f /. 1e6)
  else if n >= 10_000 then Printf.sprintf "%.1fK" (f /. 1e3)
  else string_of_int n

let human_latency us =
  if us >= 1e6 then Printf.sprintf "%.2f s" (us /. 1e6)
  else if us >= 1e3 then Printf.sprintf "%.2f ms" (us /. 1e3)
  else Printf.sprintf "%.1f us" us

let summary c =
  let parts =
    [ human_latency c.latency_us ]
    @ (if c.syscalls > 0 then [ human_count c.syscalls ^ " syscalls" ] else [])
    @ (if c.io_calls > 0 then [ human_count c.io_calls ^ " I/O" ] else [])
    @ (if c.io_bytes > 0 then [ human_count c.io_bytes ^ "B io" ] else [])
    @ (if c.sync_ops > 0 then [ human_count c.sync_ops ^ " sync" ] else [])
    @ if c.net_ops > 0 then [ human_count c.net_ops ^ " net" ] else []
  in
  String.concat ", " parts

let pp ppf c =
  Fmt.pf ppf
    "{lat=%s insn=%d sys=%d io=%d(%dB) sync=%d net=%d alloc=%d cache=%d}"
    (human_latency c.latency_us) c.instructions c.syscalls c.io_calls c.io_bytes c.sync_ops
    c.net_ops c.allocations c.cache_ops

let equal a b =
  Float.abs (a.latency_us -. b.latency_us) < 1e-9
  && a.instructions = b.instructions && a.syscalls = b.syscalls && a.io_calls = b.io_calls
  && a.io_bytes = b.io_bytes && a.sync_ops = b.sync_ops && a.net_ops = b.net_ops
  && a.allocations = b.allocations && a.cache_ops = b.cache_ops
