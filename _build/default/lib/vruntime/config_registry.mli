(** Typed configuration-parameter registries.

    The analogue of MySQL's [Sys_var_*] data structures (paper Figure 7):
    each parameter declares its type, valid range, and default, which is
    exactly the information the symbolic hook needs to make the backing
    variable symbolic while restricting it to {e valid} values.

    All values are encoded as integers: booleans as 0/1, enums (and
    enumerated strings) as member indices, floats as indices into a discrete
    choice list — the paper handles float parameters the same way due to
    engine limitations (Section 8). *)

type kind =
  | Bool
  | Int of { lo : int; hi : int }
  | Enum of string list
  | Float_choices of float list
      (** symbolic over the choice index; {!decode_float} recovers the value *)

(** Whether a symbolic hook could be added for the parameter.  Apache and
    Squid set many parameters through module function pointers, and some
    types (e.g. timezone) are too complex to make symbolic — both reduce
    hook coverage (paper Sections 4.1 and 7.6). *)
type hook_status = Hooked | No_hook_function_pointer | No_hook_complex_type

type param = {
  name : string;
  kind : kind;
  default : int;  (** encoded default value *)
  summary : string;
  perf_related : bool;  (** false for e.g. [listen_addresses]; filtered out
                            of the coverage experiment (Section 7.6) *)
  hook : hook_status;
  dynamic : bool;  (** can be changed at runtime (checker mode 1 updates) *)
}

type t

val make : system:string -> param list -> t
(** Raises [Failure] on duplicate parameter names or defaults outside the
    declared domain. *)

val system : t -> string
val params : t -> param list
val find : t -> string -> param
val find_opt : t -> string -> param option
val mem : t -> string -> bool

val dom : param -> Vsmt.Dom.t
(** Solver domain of the parameter's encoded values. *)

val sym_var : param -> Vsmt.Expr.var
(** The symbolic variable the hook creates for this parameter
    (origin [Config], domain {!dom}). *)

val encode : param -> string -> int option
(** Parse a config-file string into the encoded value; [None] if invalid. *)

val decode : param -> int -> string
val decode_float : param -> int -> float option

val param_bool : ?perf:bool -> ?hook:hook_status -> ?dynamic:bool -> string
  -> default:bool -> string -> param
val param_int : ?perf:bool -> ?hook:hook_status -> ?dynamic:bool -> string
  -> lo:int -> hi:int -> default:int -> string -> param
val param_enum : ?perf:bool -> ?hook:hook_status -> ?dynamic:bool -> string
  -> values:string list -> default:string -> string -> param
val param_float : ?perf:bool -> ?hook:hook_status -> ?dynamic:bool -> string
  -> choices:float list -> default_index:int -> string -> param

(** Concrete configurations: an assignment of encoded values to every
    parameter of a registry. *)
module Values : sig
  type registry = t
  type t

  val defaults : registry -> t
  val set : t -> string -> int -> t
  (** Raises [Failure] for unknown names or out-of-domain values. *)

  val set_str : t -> string -> string -> t
  val get : t -> string -> int
  val lookup : t -> string -> int -> int
  (** [lookup values name fallback]. *)

  val bindings : t -> (string * int) list
  val registry : t -> registry
end
