(** Hardware environment: the virtual-clock cost model.

    The paper runs targets inside S²E on concrete host hardware and relies on
    {e relative} path costs (Section 5.3, Table 7).  Here the hardware is a
    deterministic parameter: each primitive's latency is a function of the
    environment, so an experiment can be replayed on "HDD server", "SSD
    server" or "ramdisk" environments and the logical metrics can expose
    effects that a fast disk would hide.

    [symexec_overhead] models the slowdown of running under the symbolic
    engine relative to native execution (used for Table 7);
    [state_switch_us] models the S²E state-switching cost that the tracer can
    exclude by disabling state switching (Section 5.3, optimization 3). *)

type t = {
  name : string;
  fsync_us : float;
  pwrite_base_us : float;
  pwrite_us_per_kb : float;
  pread_base_us : float;
  pread_us_per_kb : float;
  buffered_write_us_per_kb : float;
  buffered_read_us_per_kb : float;
  mutex_us : float;
  cond_wait_us : float;
  net_base_us : float;
  net_us_per_kb : float;
  dns_us : float;
  malloc_base_us : float;
  memcpy_us_per_kb : float;
  compute_us_per_unit : float;
  log_append_us_per_kb : float;
  cache_op_us : float;
  page_fault_us : float;
  symexec_overhead : float;
  state_switch_us : float;
  tracer_signal_us : float;
      (** engine-clock cost of capturing one call/return signal — the
          tracer overhead that makes Violet slightly slower than vanilla
          S²E in Table 7 *)
}

val hdd_server : t
(** Default: the paper's evaluation machine class (HDD, fsync ≈ 8 ms). *)

val ssd_server : t
val ramdisk : t

val cost_of_prim : t -> Vir.Ast.prim -> int -> Cost.t
(** [cost_of_prim env prim magnitude] — latency and logical metrics of one
    primitive execution.  [magnitude] is bytes for I/O-like primitives and
    abstract units for [Compute]; pass 1 when the primitive takes none. *)

val statement_cost : t -> Cost.t
(** Baseline cost of interpreting one IR statement (models instruction
    execution between slow operations). *)
