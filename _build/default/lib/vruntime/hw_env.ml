type t = {
  name : string;
  fsync_us : float;
  pwrite_base_us : float;
  pwrite_us_per_kb : float;
  pread_base_us : float;
  pread_us_per_kb : float;
  buffered_write_us_per_kb : float;
  buffered_read_us_per_kb : float;
  mutex_us : float;
  cond_wait_us : float;
  net_base_us : float;
  net_us_per_kb : float;
  dns_us : float;
  malloc_base_us : float;
  memcpy_us_per_kb : float;
  compute_us_per_unit : float;
  log_append_us_per_kb : float;
  cache_op_us : float;
  page_fault_us : float;
  symexec_overhead : float;
  state_switch_us : float;
  tracer_signal_us : float;
}

let hdd_server =
  {
    name = "hdd_server";
    fsync_us = 8000.;
    pwrite_base_us = 12.;
    pwrite_us_per_kb = 25.;
    pread_base_us = 80.;
    pread_us_per_kb = 30.;
    buffered_write_us_per_kb = 0.8;
    buffered_read_us_per_kb = 0.3;
    mutex_us = 0.3;
    cond_wait_us = 1500.;
    net_base_us = 120.;
    net_us_per_kb = 8.;
    dns_us = 20000.;
    malloc_base_us = 0.4;
    memcpy_us_per_kb = 0.06;
    compute_us_per_unit = 0.01;
    log_append_us_per_kb = 0.5;
    cache_op_us = 0.4;
    page_fault_us = 4.;
    symexec_overhead = 14.;
    state_switch_us = 350.;
    tracer_signal_us = 18.;
  }

let ssd_server =
  {
    hdd_server with
    name = "ssd_server";
    fsync_us = 180.;
    pwrite_base_us = 6.;
    pwrite_us_per_kb = 3.;
    pread_base_us = 9.;
    pread_us_per_kb = 3.5;
  }

let ramdisk =
  {
    hdd_server with
    name = "ramdisk";
    fsync_us = 6.;
    pwrite_base_us = 0.8;
    pwrite_us_per_kb = 0.1;
    pread_base_us = 0.6;
    pread_us_per_kb = 0.08;
  }

let kb bytes = float_of_int bytes /. 1024.

let cost_of_prim env prim magnitude =
  let m = max magnitude 0 in
  let open Cost in
  match (prim : Vir.Ast.prim) with
  | Fsync -> { zero with latency_us = env.fsync_us; syscalls = 1; io_calls = 1 }
  | Pwrite ->
    {
      zero with
      latency_us = env.pwrite_base_us +. (env.pwrite_us_per_kb *. kb m);
      syscalls = 1;
      io_calls = 1;
      io_bytes = m;
    }
  | Pread ->
    {
      zero with
      latency_us = env.pread_base_us +. (env.pread_us_per_kb *. kb m);
      syscalls = 1;
      io_calls = 1;
      io_bytes = m;
    }
  | Buffered_write ->
    {
      zero with
      latency_us = env.buffered_write_us_per_kb *. kb m;
      syscalls = 1;
      io_bytes = m;
    }
  | Buffered_read ->
    { zero with latency_us = env.buffered_read_us_per_kb *. kb m; syscalls = 1; io_bytes = m }
  | Mutex_lock | Mutex_unlock -> { zero with latency_us = env.mutex_us; sync_ops = 1 }
  | Cond_wait -> { zero with latency_us = env.cond_wait_us; sync_ops = 1; syscalls = 1 }
  | Net_send | Net_recv ->
    {
      zero with
      latency_us = env.net_base_us +. (env.net_us_per_kb *. kb m);
      syscalls = 1;
      net_ops = 1;
    }
  | Dns_lookup -> { zero with latency_us = env.dns_us; syscalls = 1; net_ops = 2 }
  | Malloc -> { zero with latency_us = env.malloc_base_us; allocations = 1 }
  | Memcpy -> { zero with latency_us = env.memcpy_us_per_kb *. kb m; instructions = m / 8 }
  | Compute ->
    { zero with latency_us = env.compute_us_per_unit *. float_of_int m; instructions = m }
  | Log_append ->
    { zero with latency_us = env.log_append_us_per_kb *. kb m; io_bytes = m; syscalls = 1 }
  | Cache_lookup | Cache_store -> { zero with latency_us = env.cache_op_us; cache_ops = 1 }
  | Page_fault -> { zero with latency_us = env.page_fault_us; instructions = 50 }

let statement_cost env =
  { Cost.zero with latency_us = env.compute_us_per_unit; instructions = 1 }
