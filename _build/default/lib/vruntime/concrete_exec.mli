(** Concrete execution of IR programs on the virtual clock.

    This is the "native execution" and "black-box testing" substrate: the
    same programs the symbolic engine explores can be run concretely with a
    given configuration and workload instance, yielding a cost vector and a
    per-function latency breakdown.  Used by the testing-comparison
    experiment (Section 7.3), the profiling-accuracy experiment (Table 7),
    false-positive verification (Section 7.8), and the threshold-sensitivity
    experiment (Figure 15). *)

type outcome = {
  ret : int option;  (** return value of the entry function *)
  cost : Cost.t;
  serial_us : float;
      (** portion of latency spent on globally-serialized primitives (fsync
          of a shared log, mutexes, condition waits); drives the
          multi-client contention model *)
  per_function : (string * float) list;
      (** inclusive virtual latency per function, entry first *)
  prim_counts : (Vir.Ast.prim * int) list;
}

val is_serial_prim : Vir.Ast.prim -> bool
(** Primitives whose latency contends on a shared resource (the redo log's
    fsync, mutexes, condition waits) and therefore does not scale with the
    number of clients in the contention model. *)

exception Out_of_fuel of string
(** Raised when a loop exceeds the interpreter fuel — indicates a model bug. *)

val run :
  ?fuel:int ->
  ?max_depth:int ->
  ?entry:string ->
  env:Hw_env.t ->
  Vir.Ast.program ->
  config:(string -> int) ->
  workload:(string -> int) ->
  outcome
(** Interpret the program entry ([entry] overrides the program's own).  [config]/[workload] resolve parameter
    reads; unknown names raise [Failure].  [fuel] bounds total executed
    statements (default 2_000_000); [max_depth] bounds the call stack. *)

val run_instance :
  ?fuel:int ->
  ?entry:string ->
  env:Hw_env.t ->
  Vir.Ast.program ->
  config:Config_registry.Values.t ->
  workload:Workload.instance ->
  outcome

val throughput :
  ?entry:string ->
  env:Hw_env.t ->
  Vir.Ast.program ->
  config:Config_registry.Values.t ->
  mix:(Workload.instance * float) list ->
  clients:int ->
  float
(** Steady-state operations per second with [clients] concurrent clients
    issuing the weighted workload mix.  Uses a contention model in which the
    serialized latency portion does not scale with clients:
    [X(N) = N / (parallel + N * serial)]. *)
