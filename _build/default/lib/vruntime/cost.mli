(** Execution cost vectors.

    Violet records, for every explored path, both the absolute virtual-clock
    latency and a set of {e logical} cost metrics (paper Section 4.5):
    instruction count, system calls, file I/O calls and traffic,
    synchronization operations, network operations.  Logical metrics surface
    issues that latency alone can hide (e.g. a path issuing many more
    [pwrite]s on a machine with a large buffer cache) and enable
    extrapolation to other environments. *)

type t = {
  latency_us : float;  (** virtual-clock latency, microseconds *)
  instructions : int;
  syscalls : int;
  io_calls : int;
  io_bytes : int;
  sync_ops : int;
  net_ops : int;
  allocations : int;
  cache_ops : int;
}

val zero : t
val add : t -> t -> t
val sub : t -> t -> t
(** Pointwise difference (used by differential critical-path analysis);
    counters can go negative in a diff. *)

val latency : float -> t
(** A cost that is pure latency. *)

val scale : int -> t -> t

(** Named accessors for the logical metrics the trace analyzer compares.
    [latency_us] is deliberately excluded: the analyzer treats latency and
    logical metrics separately (Section 4.6). *)
val logical_metrics : (string * (t -> float)) list

val metric : t -> string -> float
(** Look up any metric by name, including ["latency_us"]. *)

val metric_names : string list
val pp : t Fmt.t
val summary : t -> string
(** Compact rendering, e.g. ["2.6 s, 17K syscalls, 100 I/O"]. *)

val equal : t -> t -> bool
