lib/vruntime/hw_env.ml: Cost Vir
