lib/vruntime/concrete_exec.ml: Config_registry Cost Hashtbl Hw_env List Option Printf Vir Vsmt Workload
