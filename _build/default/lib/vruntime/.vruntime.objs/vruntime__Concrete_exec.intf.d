lib/vruntime/concrete_exec.mli: Config_registry Cost Hw_env Vir Workload
