lib/vruntime/hw_env.mli: Cost Vir
