lib/vruntime/cost.mli: Fmt
