lib/vruntime/config_registry.ml: List Map Printf String Vsmt
