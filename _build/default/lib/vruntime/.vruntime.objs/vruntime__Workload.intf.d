lib/vruntime/workload.mli: Vsmt
