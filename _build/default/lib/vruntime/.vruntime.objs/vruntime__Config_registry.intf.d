lib/vruntime/config_registry.mli: Vsmt
