lib/vruntime/workload.ml: Hashtbl List Printf String Vsmt
