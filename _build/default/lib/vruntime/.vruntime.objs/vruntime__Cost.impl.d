lib/vruntime/cost.ml: Float Fmt List Printf String
