type param = { name : string; dom : Vsmt.Dom.t; summary : string }

type template = { tname : string; params : param list; defaults : (string * int) list }

let template tname params =
  let seen = Hashtbl.create 8 in
  List.iter
    (fun p ->
      if Hashtbl.mem seen p.name then
        failwith (Printf.sprintf "template %s: duplicate parameter %s" tname p.name);
      Hashtbl.add seen p.name ())
    params;
  { tname; params; defaults = List.map (fun p -> p.name, Vsmt.Dom.lo p.dom) params }

let wparam_enum name ~values summary = { name; dom = Vsmt.Dom.enum name values; summary }
let wparam_int name ~lo ~hi summary = { name; dom = Vsmt.Dom.int_range lo hi; summary }
let wparam_bool name summary = { name; dom = Vsmt.Dom.bool; summary }

let find_param t name =
  match List.find_opt (fun p -> String.equal p.name name) t.params with
  | Some p -> p
  | None -> failwith (Printf.sprintf "template %s: unknown parameter %s" t.tname name)

let sym_var p = { Vsmt.Expr.name = p.name; dom = p.dom; origin = Vsmt.Expr.Workload }

type instance = { template : template; values : (string * int) list }

let instantiate t overrides =
  List.iter
    (fun (n, v) ->
      let p = find_param t n in
      if not (Vsmt.Dom.mem p.dom v) then
        failwith (Printf.sprintf "template %s: value %d out of domain for %s" t.tname v n))
    overrides;
  let values =
    List.map
      (fun p ->
        match List.assoc_opt p.name overrides with
        | Some v -> p.name, v
        | None -> p.name, List.assoc p.name t.defaults)
      t.params
  in
  { template = t; values }

let instantiate_named t overrides =
  let encoded =
    List.map
      (fun (n, s) ->
        let p = find_param t n in
        match Vsmt.Dom.value_of_string p.dom s with
        | Some v -> n, v
        | None -> failwith (Printf.sprintf "template %s: cannot parse %S for %s" t.tname s n))
      overrides
  in
  instantiate t encoded

let value inst name =
  match List.assoc_opt name inst.values with
  | Some v -> v
  | None -> failwith (Printf.sprintf "instance of %s: unknown parameter %s" inst.template.tname name)

let value_opt inst name = List.assoc_opt name inst.values

let describe inst =
  let part (n, v) =
    let p = find_param inst.template n in
    Printf.sprintf "%s=%s" n (Vsmt.Dom.value_to_string p.dom v)
  in
  Printf.sprintf "%s{%s}" inst.template.tname (String.concat ", " (List.map part inst.values))
