(** Workload templates (paper Section 5.2).

    Making raw program input symbolic gets the engine stuck in parsing code
    producing almost no valid inputs; Violet instead pre-defines input
    templates with valid structure and parameterizes them (query type, value
    size, number of queries, ...).  The template's parameters become the
    symbolic {e workload variables}, whose constraints in an explored path
    form the {e input predicate} of a cost-table row. *)

type param = { name : string; dom : Vsmt.Dom.t; summary : string }

type template = { tname : string; params : param list; defaults : (string * int) list }

val template : string -> param list -> template
(** Defaults to each parameter's domain minimum unless overridden later. *)

val wparam_enum : string -> values:string list -> string -> param
val wparam_int : string -> lo:int -> hi:int -> string -> param
val wparam_bool : string -> string -> param

val find_param : template -> string -> param
val sym_var : param -> Vsmt.Expr.var
(** Symbolic variable of origin [Workload]. *)

(** A concrete instance of a template: assignment to every parameter. *)
type instance = { template : template; values : (string * int) list }

val instantiate : template -> (string * int) list -> instance
(** Raises [Failure] for unknown parameters or out-of-domain values;
    parameters not mentioned take the template default. *)

val instantiate_named : template -> (string * string) list -> instance
(** Like {!instantiate} but values given in domain vocabulary
    (e.g. [("sql_command", "INSERT")]). *)

val value : instance -> string -> int
(** Raises [Failure] for parameters outside the template. *)

val value_opt : instance -> string -> int option
val describe : instance -> string
