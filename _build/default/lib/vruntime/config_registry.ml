type kind = Bool | Int of { lo : int; hi : int } | Enum of string list | Float_choices of float list

type hook_status = Hooked | No_hook_function_pointer | No_hook_complex_type

type param = {
  name : string;
  kind : kind;
  default : int;
  summary : string;
  perf_related : bool;
  hook : hook_status;
  dynamic : bool;
}

module Smap = Map.Make (String)

type t = { system : string; params : param list; by_name : param Smap.t }

let dom p =
  match p.kind with
  | Bool -> Vsmt.Dom.bool
  | Int { lo; hi } -> Vsmt.Dom.int_range lo hi
  | Enum values -> Vsmt.Dom.enum p.name values
  | Float_choices choices ->
    Vsmt.Dom.enum p.name (List.map (fun f -> Printf.sprintf "%g" f) choices)

let make ~system params =
  let by_name =
    List.fold_left
      (fun m p ->
        if Smap.mem p.name m then
          failwith (Printf.sprintf "registry %s: duplicate parameter %s" system p.name);
        if not (Vsmt.Dom.mem (dom p) p.default) then
          failwith (Printf.sprintf "registry %s: default of %s out of domain" system p.name);
        Smap.add p.name p m)
      Smap.empty params
  in
  { system; params; by_name }

let system t = t.system
let params t = t.params
let find_opt t name = Smap.find_opt name t.by_name

let find t name =
  match find_opt t name with
  | Some p -> p
  | None -> failwith (Printf.sprintf "registry %s: unknown parameter %s" t.system name)

let mem t name = Smap.mem name t.by_name

let sym_var p = { Vsmt.Expr.name = p.name; dom = dom p; origin = Vsmt.Expr.Config }

let encode p s = Vsmt.Dom.value_of_string (dom p) s
let decode p v = Vsmt.Dom.value_to_string (dom p) v

let decode_float p v =
  match p.kind with
  | Float_choices choices -> List.nth_opt choices v
  | Bool | Int _ | Enum _ -> None

let param_bool ?(perf = true) ?(hook = Hooked) ?(dynamic = true) name ~default summary =
  {
    name;
    kind = Bool;
    default = (if default then 1 else 0);
    summary;
    perf_related = perf;
    hook;
    dynamic;
  }

let param_int ?(perf = true) ?(hook = Hooked) ?(dynamic = true) name ~lo ~hi ~default summary =
  { name; kind = Int { lo; hi }; default; summary; perf_related = perf; hook; dynamic }

let param_enum ?(perf = true) ?(hook = Hooked) ?(dynamic = true) name ~values ~default summary =
  let default_index =
    match List.find_index (String.equal default) values with
    | Some i -> i
    | None -> failwith (Printf.sprintf "param %s: default %s not in values" name default)
  in
  { name; kind = Enum values; default = default_index; summary; perf_related = perf; hook; dynamic }

let param_float ?(perf = true) ?(hook = Hooked) ?(dynamic = true) name ~choices ~default_index
    summary =
  {
    name;
    kind = Float_choices choices;
    default = default_index;
    summary;
    perf_related = perf;
    hook;
    dynamic;
  }

module Values = struct
  type registry = t
  type nonrec t = { reg : t; values : int Smap.t }

  let defaults reg =
    {
      reg;
      values =
        List.fold_left (fun m p -> Smap.add p.name p.default m) Smap.empty reg.params;
    }

  let set t name v =
    let p = find t.reg name in
    if not (Vsmt.Dom.mem (dom p) v) then
      failwith (Printf.sprintf "config %s: value %d out of domain for %s" t.reg.system v name);
    { t with values = Smap.add name v t.values }

  let set_str t name s =
    let p = find t.reg name in
    match encode p s with
    | Some v -> set t name v
    | None -> failwith (Printf.sprintf "config %s: cannot parse %S for %s" t.reg.system s name)

  let get t name =
    match Smap.find_opt name t.values with
    | Some v -> v
    | None -> (find t.reg name).default

  let lookup t name fallback =
    match Smap.find_opt name t.values with
    | Some v -> v
    | None -> ( match find_opt t.reg name with Some p -> p.default | None -> fallback)

  let bindings t = Smap.bindings t.values
  let registry t = t.reg
end
