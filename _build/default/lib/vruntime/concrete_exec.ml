open Vir.Ast

type outcome = {
  ret : int option;
  cost : Cost.t;
  serial_us : float;
  per_function : (string * float) list;
  prim_counts : (prim * int) list;
}

exception Out_of_fuel of string
exception Return_exn of int option

type interp = {
  program : program;
  env : Hw_env.t;
  config : string -> int;
  workload : string -> int;
  globals : (string, int) Hashtbl.t;
  mutable cost : Cost.t;
  mutable serial_us : float;
  mutable fuel : int;
  max_depth : int;
  fn_latency : (string, float) Hashtbl.t;
  fn_order : string list ref;
  prim_counts : (prim, int) Hashtbl.t;
}

let is_serial_prim = function
  | Fsync | Mutex_lock | Mutex_unlock | Cond_wait -> true
  | Pwrite | Pread | Buffered_write | Buffered_read | Net_send | Net_recv | Dns_lookup
  | Malloc | Memcpy | Compute | Log_append | Cache_lookup | Cache_store | Page_fault ->
    false

let charge t c =
  t.cost <- Cost.add t.cost c

let rec eval_expr t locals = function
  | Const v -> v
  | Config n -> t.config n
  | Workload n -> t.workload n
  | Local n -> begin
    match Hashtbl.find_opt locals n with
    | Some v -> v
    | None -> failwith (Printf.sprintf "uninitialized local %s" n)
  end
  | Global n -> begin
    match Hashtbl.find_opt t.globals n with
    | Some v -> v
    | None -> failwith (Printf.sprintf "unknown global %s" n)
  end
  | Not e -> if eval_expr t locals e <> 0 then 0 else 1
  | Neg e -> -eval_expr t locals e
  | Binop (Vsmt.Expr.And, a, b) ->
    if eval_expr t locals a <> 0 then (if eval_expr t locals b <> 0 then 1 else 0) else 0
  | Binop (Vsmt.Expr.Or, a, b) ->
    if eval_expr t locals a <> 0 then 1 else if eval_expr t locals b <> 0 then 1 else 0
  | Binop (op, a, b) -> Vsmt.Expr.apply_binop op (eval_expr t locals a) (eval_expr t locals b)
  | Ite (c, a, b) ->
    if eval_expr t locals c <> 0 then eval_expr t locals a else eval_expr t locals b

let exec_prim t locals p args =
  let magnitude = match args with [] -> 1 | a :: _ -> eval_expr t locals a in
  let c = Hw_env.cost_of_prim t.env p magnitude in
  charge t c;
  if is_serial_prim p then t.serial_us <- t.serial_us +. c.Cost.latency_us;
  Hashtbl.replace t.prim_counts p
    (1 + match Hashtbl.find_opt t.prim_counts p with Some n -> n | None -> 0)

let rec exec_block t depth locals block = List.iter (exec_stmt t depth locals) block

and exec_stmt t depth locals stmt =
  t.fuel <- t.fuel - 1;
  if t.fuel <= 0 then raise (Out_of_fuel t.program.pname);
  charge t (Hw_env.statement_cost t.env);
  match stmt with
  | Assign (Lv_local n, e) -> Hashtbl.replace locals n (eval_expr t locals e)
  | Assign (Lv_global n, e) -> Hashtbl.replace t.globals n (eval_expr t locals e)
  | If (c, th, el) -> if eval_expr t locals c <> 0 then exec_block t depth locals th
    else exec_block t depth locals el
  | While (c, body) ->
    while eval_expr t locals c <> 0 do
      t.fuel <- t.fuel - 1;
      if t.fuel <= 0 then raise (Out_of_fuel t.program.pname);
      exec_block t depth locals body
    done
  | Call { dest; fn; args; ret_addr = _ } ->
    let argv = List.map (eval_expr t locals) args in
    let v = call_function t depth fn argv in
    begin
      match dest, v with
      | Some d, Some v -> Hashtbl.replace locals d v
      | Some d, None -> Hashtbl.replace locals d 0
      | None, _ -> ()
    end
  | Return e -> raise (Return_exn (Option.map (eval_expr t locals) e))
  | Prim (p, args) -> exec_prim t locals p args
  | Thread _ | Trace_on | Trace_off -> ()

and call_function t depth fn argv =
  if depth > t.max_depth then failwith (Printf.sprintf "call depth exceeded at %s" fn);
  let f = find_func t.program fn in
  let t0 = t.cost.Cost.latency_us in
  let result =
    match f.kind with
    | Library { semantics; cost; effect = _ } ->
      List.iter (fun (p, m) -> charge t (Hw_env.cost_of_prim t.env p m)) cost;
      Some (semantics argv)
    | Defined body ->
      let locals = Hashtbl.create 16 in
      List.iteri
        (fun i name -> Hashtbl.replace locals name (try List.nth argv i with _ -> 0))
        f.params;
      begin
        try
          exec_block t (depth + 1) locals body;
          None
        with Return_exn v -> v
      end
  in
  let dt = t.cost.Cost.latency_us -. t0 in
  if not (Hashtbl.mem t.fn_latency fn) then t.fn_order := fn :: !(t.fn_order);
  Hashtbl.replace t.fn_latency fn
    (dt +. match Hashtbl.find_opt t.fn_latency fn with Some x -> x | None -> 0.);
  result

let run ?(fuel = 2_000_000) ?(max_depth = 128) ?entry ~env program ~config ~workload =
  let t =
    {
      program;
      env;
      config;
      workload;
      globals = Hashtbl.create 32;
      cost = Cost.zero;
      serial_us = 0.;
      fuel;
      max_depth;
      fn_latency = Hashtbl.create 32;
      fn_order = ref [];
      prim_counts = Hashtbl.create 16;
    }
  in
  List.iter (fun (g, v) -> Hashtbl.replace t.globals g v) program.globals;
  let entry = match entry with Some e -> e | None -> program.entry in
  let ret = call_function t 0 entry [] in
  {
    ret;
    cost = t.cost;
    serial_us = t.serial_us;
    per_function =
      List.rev_map (fun fn -> fn, Hashtbl.find t.fn_latency fn) !(t.fn_order);
    prim_counts = Hashtbl.fold (fun p n acc -> (p, n) :: acc) t.prim_counts [];
  }

(* programs may read workload parameters the chosen template does not
   expose (the paper's c14/c15 situation); those read as 0, the same value
   the symbolic pipeline's concrete fallback uses *)
let run_instance ?fuel ?entry ~env program ~config ~workload =
  run ?fuel ?entry ~env program
    ~config:(fun n -> Config_registry.Values.get config n)
    ~workload:(fun n ->
      match Workload.value_opt workload n with Some v -> v | None -> 0)

let throughput ?entry ~env program ~config ~mix ~clients =
  if clients <= 0 then invalid_arg "Concrete_exec.throughput: clients must be positive";
  let total_w = List.fold_left (fun acc (_, w) -> acc +. w) 0. mix in
  if total_w <= 0. then invalid_arg "Concrete_exec.throughput: empty mix";
  let serial, parallel =
    List.fold_left
      (fun (s, p) (inst, w) ->
        let o = run_instance ?entry ~env program ~config ~workload:inst in
        let w = w /. total_w in
        ( s +. (w *. o.serial_us),
          p +. (w *. (o.cost.Cost.latency_us -. o.serial_us)) ))
      (0., 0.) mix
  in
  let n = float_of_int clients in
  n *. 1e6 /. (parallel +. (n *. serial))
