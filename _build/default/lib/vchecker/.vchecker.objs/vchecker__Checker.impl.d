lib/vchecker/checker.ml: Config_file Fmt Int List Printf Result String Test_case Unix Vmodel Vruntime Vsmt
