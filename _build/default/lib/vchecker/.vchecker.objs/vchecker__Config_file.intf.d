lib/vchecker/config_file.mli: Vruntime
