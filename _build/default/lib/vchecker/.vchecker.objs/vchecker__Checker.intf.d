lib/vchecker/checker.mli: Config_file Fmt Test_case Vmodel Vruntime
