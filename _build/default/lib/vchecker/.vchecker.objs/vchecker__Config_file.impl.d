lib/vchecker/config_file.ml: Fun Hashtbl List Printf String Vruntime
