lib/vchecker/test_case.ml: List Printf String Vmodel Vsmt
