lib/vchecker/test_case.mli: Vmodel Vsmt
