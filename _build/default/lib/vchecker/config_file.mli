(** my.cnf / postgresql.conf style configuration files.

    Supported syntax: [key = value] lines, [#] and [;] comments, blank
    lines, and [\[section\]] headers (recorded but not interpreted, like
    MySQL's option groups).  Later assignments to the same key win, matching
    the behaviour of the real parsers. *)

type t

val parse : string -> (t, string) result
(** Parse file contents.  Malformed lines produce [Error] with the 1-based
    line number. *)

val load : string -> (t, string) result
val bindings : t -> (string * string) list
val lookup : t -> string -> string option

val changed_keys : old_file:t -> new_file:t -> (string * string option * string option) list
(** [(key, old value, new value)] for every key added, removed or modified. *)

val to_assignment :
  Vruntime.Config_registry.t -> t -> ((string * int) list * string list, string) result
(** Encode the file against a registry: returns the full assignment
    (registry defaults overridden by the file) plus the list of file keys
    unknown to the registry (ignored, like plugin options).  [Error] on a
    value that fails validation — that is an {e invalid} configuration,
    which is outside Violet's scope but still reported. *)
