(** Validation test-case generation (paper Section 4.7).

    When the checker flags a potential specious configuration, it also
    generates a test case from the poor state's input predicate: a concrete
    workload assignment satisfying the predicate, which the operator can run
    to confirm the regression. *)

type t = {
  workload : (string * int) list;  (** encoded workload-parameter values *)
  description : string;  (** human-readable, domain vocabulary *)
}

val of_row : Vmodel.Cost_row.t -> t option
(** Solve the row's workload predicate; [None] when the predicate is
    unsatisfiable (should not happen for an explored state). *)

val of_predicate : Vsmt.Expr.t list -> t option

val of_pair :
  poor:(string * int) list ->
  good:(string * int) list ->
  slow:Vmodel.Cost_row.t ->
  fast:Vmodel.Cost_row.t ->
  t option
(** A test case that {e distinguishes} the pair: the input satisfies both
    states' input predicates plus the residuals of their configuration
    constraints under the poor (slow side) and good (fast side)
    configurations.  Mixed constraints such as "row_bytes > buffer/2"
    become input requirements once the configuration is pinned, and the
    fast row's input class (e.g. "the object is cached") is preserved —
    running the poor and good configurations on this input reproduces the
    difference. *)
