(** Differential critical-path analysis (paper Section 4.6).

    For a state pair with a significant performance difference, the analyzer
    finds the longest common subsequence of the two call chains, builds a
    diff trace — common records with their metrics subtracted plus the
    records appearing only in the slower state — and then locates the call
    record (excluding the entry) with the largest differential cost.  The
    critical path is that record's ancestor chain. *)

type diff = {
  slower_only : (string * float) list;
      (** function name and latency of slow-state-only records *)
  common_delta : (string * float) list;  (** per matched record: slow - fast *)
  critical_path : string list;  (** root → max-differential record, root excluded *)
  max_differential_us : float;
}

val lcs : string list -> string list -> (int * int) list
(** Longest common subsequence as index pairs (into the first and second
    sequence respectively), in order. *)

val differential : slow:Cost_row.t -> fast:Cost_row.t -> diff
