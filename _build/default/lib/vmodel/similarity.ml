let constraint_strings cs = List.map Vsmt.Expr.to_string cs

let appearance_count a b =
  List.fold_left (fun acc c -> if List.mem c b then acc + 1 else acc) 0 a

let score (a : Cost_row.t) (b : Cost_row.t) =
  appearance_count
    (constraint_strings a.Cost_row.config_constraints)
    (constraint_strings b.Cost_row.config_constraints)

let workload_score (a : Cost_row.t) (b : Cost_row.t) =
  appearance_count
    (constraint_strings a.Cost_row.workload_pred)
    (constraint_strings b.Cost_row.workload_pred)

(* Pre-render every row's constraints once: ranking is quadratic in the
   number of states, so per-pair work must stay cheap. *)
let rank_pairs rows =
  let arr = Array.of_list rows in
  let config_strs =
    Array.map (fun r -> constraint_strings r.Cost_row.config_constraints) arr
  in
  let workload_strs =
    Array.map (fun r -> constraint_strings r.Cost_row.workload_pred) arr
  in
  let n = Array.length arr in
  let pairs = ref [] in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let s =
        appearance_count config_strs.(i) config_strs.(j)
        + appearance_count workload_strs.(i) workload_strs.(j)
      in
      pairs := (arr.(i), arr.(j), s) :: !pairs
    done
  done;
  List.stable_sort (fun (_, _, s1) (_, _, s2) -> Int.compare s2 s1) (List.rev !pairs)
