lib/vmodel/impact_model.ml: Cost_row Critical_path Diff_analysis Fmt Fun List Option Result String Vruntime Vsmt
