lib/vmodel/diff_analysis.ml: Array Cost_row Critical_path Float Hashtbl Int List String Vruntime Vsmt
