lib/vmodel/critical_path.mli: Cost_row
