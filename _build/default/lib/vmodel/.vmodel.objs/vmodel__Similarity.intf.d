lib/vmodel/similarity.mli: Cost_row
