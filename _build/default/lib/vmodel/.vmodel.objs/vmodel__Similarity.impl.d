lib/vmodel/similarity.ml: Array Cost_row Int List Vsmt
