lib/vmodel/critical_path.ml: Array Cost_row List String Vtrace
