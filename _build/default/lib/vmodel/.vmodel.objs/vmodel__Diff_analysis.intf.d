lib/vmodel/diff_analysis.mli: Cost_row Critical_path
