lib/vmodel/impact_model.mli: Cost_row Diff_analysis Fmt
