lib/vmodel/cost_row.ml: Fmt List String Vruntime Vsmt Vtrace
