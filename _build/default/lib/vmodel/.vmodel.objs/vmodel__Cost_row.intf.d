lib/vmodel/cost_row.mli: Fmt Vruntime Vsmt Vtrace
