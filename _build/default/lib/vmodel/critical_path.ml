module CP = Vtrace.Callpath

type diff = {
  slower_only : (string * float) list;
  common_delta : (string * float) list;
  critical_path : string list;
  max_differential_us : float;
}

let lcs a b =
  let a = Array.of_list a and b = Array.of_list b in
  let n = Array.length a and m = Array.length b in
  (* cap to keep quadratic DP bounded on pathological chains *)
  let cap = 2048 in
  let n = min n cap and m = min m cap in
  let dp = Array.make_matrix (n + 1) (m + 1) 0 in
  for i = n - 1 downto 0 do
    for j = m - 1 downto 0 do
      dp.(i).(j) <-
        (if String.equal a.(i) b.(j) then 1 + dp.(i + 1).(j + 1)
         else max dp.(i + 1).(j) dp.(i).(j + 1))
    done
  done;
  let rec walk i j acc =
    if i >= n || j >= m then List.rev acc
    else if String.equal a.(i) b.(j) then walk (i + 1) (j + 1) ((i, j) :: acc)
    else if dp.(i + 1).(j) >= dp.(i).(j + 1) then walk (i + 1) j acc
    else walk i (j + 1) acc
  in
  walk 0 0 []

let differential ~(slow : Cost_row.t) ~(fast : Cost_row.t) =
  let slow_nodes = Array.of_list slow.Cost_row.nodes in
  let fast_nodes = Array.of_list fast.Cost_row.nodes in
  (* attribute each record its own (exclusive) cost, so the hottest
     differential record is the slow operation itself, not an ancestor *)
  let slow_excl = Array.map (CP.exclusive_latency slow.Cost_row.nodes) slow_nodes in
  let fast_excl = Array.map (CP.exclusive_latency fast.Cost_row.nodes) fast_nodes in
  let matches = lcs slow.Cost_row.chain fast.Cost_row.chain in
  let matched_slow = List.map fst matches in
  (* (slow index, name, slow - fast latency) for each matched record *)
  let common =
    List.filter_map
      (fun (i, j) ->
        if i < Array.length slow_nodes && j < Array.length fast_nodes then
          Some (i, slow_nodes.(i).CP.fname, slow_excl.(i) -. fast_excl.(j))
        else None)
      matches
  in
  let common_delta = List.map (fun (_, name, d) -> name, d) common in
  let slower_only =
    Array.to_list slow_nodes
    |> List.mapi (fun i (n : CP.node) -> i, n)
    |> List.filter_map (fun (i, (n : CP.node)) ->
           if List.mem i matched_slow then None else Some (i, n))
  in
  (* the record with the largest differential cost, excluding the entry *)
  let candidates =
    List.map (fun (i, (_ : CP.node)) -> i, slow_excl.(i)) slower_only
    @ List.map (fun (i, _, delta) -> i, delta) common
  in
  let candidates =
    List.filter
      (fun (i, _) ->
        i < Array.length slow_nodes && slow_nodes.(i).CP.parent <> None)
      candidates
  in
  match candidates with
  | [] ->
    {
      slower_only =
        List.map (fun (i, (n : CP.node)) -> n.CP.fname, slow_excl.(i)) slower_only;
      common_delta;
      critical_path = [];
      max_differential_us = 0.;
    }
  | first :: rest ->
    let max_i, max_d =
      List.fold_left (fun (bi, bd) (i, d) -> if d > bd then i, d else bi, bd) first rest
    in
    let nodes = slow.Cost_row.nodes in
    let rec ancestors acc (n : CP.node) =
      match n.CP.parent with
      | None -> acc
      | Some p -> begin
        match CP.find nodes p with
        | Some parent -> ancestors (n.CP.fname :: acc) parent
        | None -> n.CP.fname :: acc
      end
    in
    {
      slower_only =
        List.map (fun (i, (n : CP.node)) -> n.CP.fname, slow_excl.(i)) slower_only;
      common_delta;
      critical_path = ancestors [] slow_nodes.(max_i);
      max_differential_us = max_d;
    }
