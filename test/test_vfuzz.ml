(* Tests for the vfuzz subsystem: the splittable PRNG, spec validation and
   round-tripping, the generator's determinism and planted ground truth, the
   mutator's invariants, the differential oracle (including the daemon leg,
   so this suite must run after the fork-based vresilience tests), the
   shrinker, and the export/import round-trip property over generated
   impact models. *)

module G = Vfuzz.Genspec
module Sprng = Vfuzz.Sprng

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

(* ------------------------------------------------------------------ *)
(* Sprng                                                               *)
(* ------------------------------------------------------------------ *)

let draws rng n = List.init n (fun _ -> Sprng.int rng 1_000_000)

let test_sprng_deterministic () =
  check
    (Alcotest.list Alcotest.int)
    "same seed, same stream"
    (draws (Sprng.make 7) 32)
    (draws (Sprng.make 7) 32);
  check Alcotest.bool "different seeds, different streams" true
    (draws (Sprng.make 7) 32 <> draws (Sprng.make 8) 32)

let test_sprng_bounds () =
  let rng = Sprng.make 3 in
  for _ = 1 to 10_000 do
    let v = Sprng.int rng 7 in
    check Alcotest.bool "int in [0,7)" true (v >= 0 && v < 7);
    let r = Sprng.range rng ~lo:(-5) ~hi:5 in
    check Alcotest.bool "range in [-5,5]" true (r >= -5 && r <= 5)
  done

let test_sprng_split_independent () =
  (* keyed children are a pure function of (parent state, key) *)
  check
    (Alcotest.list Alcotest.int)
    "same key, same child"
    (draws (Sprng.split_at (Sprng.make 11) 4) 16)
    (draws (Sprng.split_at (Sprng.make 11) 4) 16);
  check Alcotest.bool "sibling keys diverge" true
    (draws (Sprng.split_at (Sprng.make 11) 4) 16
    <> draws (Sprng.split_at (Sprng.make 11) 5) 16);
  (* consuming a child does not advance the parent *)
  let p1 = Sprng.make 11 and p2 = Sprng.make 11 in
  ignore (draws (Sprng.split_at p1 0) 64);
  check (Alcotest.list Alcotest.int) "parent unperturbed" (draws p2 16) (draws p1 16)

let test_sprng_shuffle_permutes () =
  let xs = List.init 20 Fun.id in
  let shuffled = Sprng.shuffle (Sprng.make 9) xs in
  check (Alcotest.list Alcotest.int) "same multiset" xs (List.sort compare shuffled);
  check Alcotest.bool "actually moved something" true (shuffled <> xs)

(* ------------------------------------------------------------------ *)
(* Generator                                                           *)
(* ------------------------------------------------------------------ *)

let test_generate_deterministic () =
  let a = Vfuzz.Generate.spec ~seed:42 ~index:5 () in
  let b = Vfuzz.Generate.spec ~seed:42 ~index:5 () in
  check Alcotest.bool "spec is pure in (seed, index)" true (a = b);
  let c1 = Vfuzz.Generate.corpus ~seed:42 ~count:8 () in
  let c2 = Vfuzz.Generate.corpus ~seed:42 ~count:8 () in
  check Alcotest.bool "corpus is pure in (seed, count)" true (c1 = c2);
  check Alcotest.int "distinct names" 8
    (List.length (List.sort_uniq compare (List.map (fun s -> s.G.g_name) c1)))

let test_generate_valid_and_lowers () =
  List.iter
    (fun spec ->
      (match G.validate spec with
      | Ok () -> ()
      | Error m -> Alcotest.failf "%s invalid: %s" spec.G.g_name m);
      let target = G.to_target spec in
      check Alcotest.bool "has functions" true
        (List.length target.Violet.Pipeline.program.Vir.Ast.funcs >= 2);
      check Alcotest.bool "plant params registered" true
        (List.for_all
           (fun (p : G.plant) ->
             Vruntime.Config_registry.find_opt target.Violet.Pipeline.registry
               p.G.p_param
             <> None)
           spec.G.g_plants))
    (Vfuzz.Generate.corpus ~seed:1 ~count:12 ())

let test_generate_plant_default_is_good () =
  (* the plant-default invariant keeps one plant's poor side out of every
     other plant's concrete baseline *)
  List.iter
    (fun spec ->
      List.iter
        (fun (pl : G.plant) ->
          match G.find_cparam spec pl.G.p_param with
          | None -> Alcotest.failf "plant param %s undeclared" pl.G.p_param
          | Some c ->
            check Alcotest.int
              (pl.G.p_param ^ " default = good value")
              pl.G.p_good c.G.c_default)
        spec.G.g_plants)
    (Vfuzz.Generate.corpus ~seed:3 ~count:15 ())

(* ------------------------------------------------------------------ *)
(* Spec round-trip                                                     *)
(* ------------------------------------------------------------------ *)

let prop_spec_roundtrip =
  QCheck2.Test.make ~name:"spec sexp round-trip" ~count:60
    QCheck2.Gen.(pair (int_range 0 1000) (int_range 0 50))
    (fun (seed, index) ->
      let spec = Vfuzz.Generate.spec ~seed ~index () in
      (* half the time, round-trip a mutated spec (non-empty trail) *)
      let spec =
        if index mod 2 = 0 then spec
        else fst (Vfuzz.Mutate.apply (Sprng.split_at (Sprng.make seed) 999) spec)
      in
      match G.of_string (G.to_string spec) with
      | Ok spec' -> spec = spec'
      | Error m -> QCheck2.Test.fail_reportf "parse failed: %s" m)

let test_spec_rejects_garbage () =
  (match G.of_string "(not-a-spec)" with
  | Ok _ -> Alcotest.fail "accepted garbage"
  | Error _ -> ());
  match G.of_string "(vfuzz-spec 99 (name x))" with
  | Ok _ -> Alcotest.fail "accepted bad version"
  | Error _ -> ()

(* ------------------------------------------------------------------ *)
(* Mutator                                                             *)
(* ------------------------------------------------------------------ *)

let test_mutate_kinds () =
  let kinds =
    [
      Vfuzz.Mutate.Flip_const; Vfuzz.Mutate.Swap_predicate; Vfuzz.Mutate.Widen_range;
      Vfuzz.Mutate.Splice_hot_loop;
    ]
  in
  let applied = Hashtbl.create 4 in
  List.iter
    (fun seed ->
      let spec = Vfuzz.Generate.spec ~seed ~index:0 () in
      List.iter
        (fun kind ->
          let rng = Sprng.split_at (Sprng.make seed) 777 in
          match Vfuzz.Mutate.apply_kind rng kind spec with
          | None -> ()
          | Some (spec', desc) ->
            Hashtbl.replace applied (Vfuzz.Mutate.kind_to_string kind) ();
            check Alcotest.bool "mutated spec validates" true
              (G.validate spec' = Ok ());
            ignore (G.to_target spec');
            check Alcotest.bool "trail records the change" true
              (List.mem desc spec'.G.g_trail))
        kinds)
    [ 1; 2; 3; 4; 5; 6 ];
  check Alcotest.bool "every kind applied at least once" true
    (List.for_all
       (fun k -> Hashtbl.mem applied (Vfuzz.Mutate.kind_to_string k))
       kinds)

let test_mutate_swap_updates_ground_truth () =
  (* find a spec where swap applies, and check poor/good + default swap *)
  let rec go seed =
    if seed > 50 then Alcotest.fail "no swappable spec found"
    else begin
      let spec = Vfuzz.Generate.spec ~seed ~index:1 () in
      let rng = Sprng.split_at (Sprng.make seed) 123 in
      match Vfuzz.Mutate.apply_kind rng Vfuzz.Mutate.Swap_predicate spec with
      | None -> go (seed + 1)
      | Some (spec', _) ->
        let changed =
          List.exists2
            (fun (a : G.plant) (b : G.plant) ->
              a.G.p_poor = b.G.p_good && a.G.p_good = b.G.p_poor && a.G.p_poor <> b.G.p_poor)
            spec.G.g_plants spec'.G.g_plants
        in
        check Alcotest.bool "one plant's polarity swapped" true changed;
        List.iter
          (fun (pl : G.plant) ->
            match G.find_cparam spec' pl.G.p_param with
            | Some c -> check Alcotest.int "default follows good" pl.G.p_good c.G.c_default
            | None -> Alcotest.fail "plant param vanished")
          spec'.G.g_plants
    end
  in
  go 1

let test_mutate_fraction () =
  let specs = Vfuzz.Generate.corpus ~seed:5 ~count:10 ~mutate_fraction:1.0 () in
  check Alcotest.bool "every member carries a trail" true
    (List.for_all (fun s -> s.G.g_trail <> []) specs)

(* ------------------------------------------------------------------ *)
(* Ground truth: recall and precision                                  *)
(* ------------------------------------------------------------------ *)

let test_harness_scores_plants () =
  let specs = Vfuzz.Generate.corpus ~seed:11 ~count:8 () in
  let _, score = Vfuzz.Harness.run specs in
  check Alcotest.int "every plant detected" score.Vfuzz.Harness.s_plants
    score.Vfuzz.Harness.s_detected;
  check Alcotest.int "no decoy flagged" 0 score.Vfuzz.Harness.s_flagged;
  check Alcotest.bool "has plants and decoys" true
    (score.Vfuzz.Harness.s_plants > 0 && score.Vfuzz.Harness.s_decoys > 0);
  check (Alcotest.float 1e-9) "recall" 1.0 score.Vfuzz.Harness.s_recall;
  check (Alcotest.float 1e-9) "precision" 1.0 score.Vfuzz.Harness.s_precision

(* ------------------------------------------------------------------ *)
(* Differential oracle                                                 *)
(* ------------------------------------------------------------------ *)

let test_oracle_agrees_in_process () =
  List.iter
    (fun spec ->
      let r = Vfuzz.Oracle.check ~daemon:false ~inc:false spec in
      if not (Vfuzz.Oracle.agreed r) then
        Alcotest.failf "%s disagrees: %s" r.Vfuzz.Oracle.r_system
          (String.concat "; "
             (List.map
                (fun (d : Vfuzz.Oracle.disagreement) ->
                  d.Vfuzz.Oracle.d_param ^ " " ^ d.Vfuzz.Oracle.d_leg)
                r.Vfuzz.Oracle.r_disagreements));
      check Alcotest.bool "compared the full grid" true (r.Vfuzz.Oracle.r_combos >= 4))
    (Vfuzz.Generate.corpus ~seed:21 ~count:4 ())

let test_oracle_daemon_leg () =
  let spec = Vfuzz.Generate.spec ~seed:21 ~index:0 () in
  let r = Vfuzz.Oracle.check ~daemon:true ~inc:false spec in
  check Alcotest.bool "daemon leg ran" true (r.Vfuzz.Oracle.r_daemon_checks > 0);
  check Alcotest.bool "daemon agrees with in-process checker" true
    (Vfuzz.Oracle.agreed r)

let test_oracle_inc_leg () =
  (* spliced-vs-scratch upgrade analysis: jobs 1/4 x solver cache cold/warm,
     each compared byte-for-byte against a from-scratch rebuild *)
  let spec = Vfuzz.Generate.spec ~seed:21 ~index:1 () in
  let r = Vfuzz.Oracle.check ~daemon:false ~modes:false ~fast:false spec in
  check Alcotest.int "inc leg compared all four variants" 4
    r.Vfuzz.Oracle.r_inc_checks;
  check Alcotest.bool "spliced baselines agree with scratch" true
    (Vfuzz.Oracle.agreed r)

(* ------------------------------------------------------------------ *)
(* Shrinker                                                            *)
(* ------------------------------------------------------------------ *)

let rec node_has_fsync = function
  | G.S_op G.O_fsync -> true
  | G.S_op _ | G.S_call _ | G.S_cfg_read _ -> false
  | G.S_if (_, t, e) -> List.exists node_has_fsync t || List.exists node_has_fsync e
  | G.S_loop (_, b) | G.S_unreachable b -> List.exists node_has_fsync b

let has_fsync (s : G.t) =
  List.exists (fun (f : G.fspec) -> List.exists node_has_fsync f.G.f_body) s.G.g_funcs

let test_shrink_candidates_valid_and_smaller () =
  let spec = Vfuzz.Generate.spec ~seed:42 ~index:0 () in
  let cs = Vfuzz.Shrink.candidates spec in
  check Alcotest.bool "has candidates" true (cs <> []);
  List.iter
    (fun c ->
      check Alcotest.bool "candidate validates" true (G.validate c = Ok ());
      check Alcotest.bool "candidate strictly smaller" true (G.size c < G.size spec))
    cs

let test_shrink_minimizes () =
  let spec = Vfuzz.Generate.spec ~seed:42 ~index:0 () in
  check Alcotest.bool "precondition: spec has an fsync" true (has_fsync spec);
  let o = Vfuzz.Shrink.shrink ~max_checks:500 ~still_fails:has_fsync spec in
  check Alcotest.bool "shrunk spec still fails" true (has_fsync o.Vfuzz.Shrink.sh_spec);
  check Alcotest.bool "strictly smaller" true
    (o.Vfuzz.Shrink.sh_to_size < o.Vfuzz.Shrink.sh_from_size);
  check Alcotest.bool "small result" true (o.Vfuzz.Shrink.sh_to_size <= 8);
  check Alcotest.bool "still validates" true (G.validate o.Vfuzz.Shrink.sh_spec = Ok ());
  ignore (G.to_target o.Vfuzz.Shrink.sh_spec);
  (* reproducer round-trips through the .vfz format *)
  match G.of_string (G.to_string o.Vfuzz.Shrink.sh_spec) with
  | Ok s -> check Alcotest.bool "reproducer round-trips" true (s = o.Vfuzz.Shrink.sh_spec)
  | Error m -> Alcotest.failf "reproducer does not parse: %s" m

(* ------------------------------------------------------------------ *)
(* export_model/import_model round-trip over generated models          *)
(* ------------------------------------------------------------------ *)

module E = Vsmt.Expr
module Cost = Vruntime.Cost

let row_gen =
  QCheck2.Gen.(
    let var name = E.var ~origin:E.Config name (Vsmt.Dom.int_range 0 100) in
    let constraint_gen =
      oneof
        [
          return [];  (* the empty-constraint row models persist *)
          (let* name = oneofl [ "sync_mode"; "caché_größe"; "p0" ] in
           let* v = int_range 0 100 in
           return [ E.( ==. ) (var name) (E.const v) ]);
          (let* v = int_range 0 100 in
           return [ E.( <=. ) (var "innodb_io_capacity") (E.const v) ]);
        ]
    in
    let* sid = int_range 0 500 in
    let* cfg = constraint_gen in
    let* wl = constraint_gen in
    let* latency = float_range 0.0 1.0e6 in
    let* sys = int_range 0 1000 in
    let* ops =
      oneofl
        [ []; [ "fil_flush" ]; [ "log_write→fil_flush"; "fsync" ]; [ "häßlich" ] ]
    in
    return
      {
        Vmodel.Cost_row.state_id = sid;
        config_constraints = cfg;
        workload_pred = wl;
        cost = { Cost.zero with Cost.latency_us = latency; syscalls = sys };
        traced_latency_us = latency;
        (* chain and nodes are documented as not persisted *)
        chain = [];
        nodes = [];
        critical_ops = ops;
      })

let model_gen =
  QCheck2.Gen.(
    let* system = oneofl [ "gen"; "systéme"; "fz-π" ] in
    let* target = oneofl [ "sync_binlog"; "caché_größe" ] in
    let* rows = list_size (int_range 0 6) row_gen in
    let* threshold = float_range 0.5 2.0 in
    let* max_ratio = float_range 0.0 100.0 in
    return
      {
        Vmodel.Impact_model.system;
        target;
        related = [ "a"; "ü" ];
        threshold;
        rows;
        poor_pairs = [];
        poor_state_ids = List.map (fun (r : Vmodel.Cost_row.t) -> r.Vmodel.Cost_row.state_id) rows;
        max_ratio;
        explored_states = List.length rows;
        analysis_wall_s = 0.25;
        virtual_analysis_s = 1.5;
        degradation = None;
      })

let prop_export_import_roundtrip =
  QCheck2.Test.make ~name:"export_model/import_model round-trip" ~count:80 model_gen
    (fun model ->
      let path =
        Filename.temp_file "vfuzz-model" ".vmodel"
      in
      Fun.protect
        ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
        (fun () ->
          match Violet.Pipeline.export_model model path with
          | Error m -> QCheck2.Test.fail_reportf "export failed: %s" m
          | Ok () -> (
            match Violet.Pipeline.import_model path with
            | Error m -> QCheck2.Test.fail_reportf "import failed: %s" m
            | Ok model' ->
              String.equal
                (Vmodel.Impact_model.to_string model)
                (Vmodel.Impact_model.to_string model'))))

let test_export_import_pipeline_model () =
  (* the same property over a model the real pipeline produced *)
  let spec = Vfuzz.Generate.spec ~seed:33 ~index:2 () in
  let target = G.to_target spec in
  let param = (List.hd spec.G.g_plants).G.p_param in
  match Violet.Pipeline.analyze ~opts:Vfuzz.Oracle.default_opts target param with
  | Error e -> Alcotest.failf "analyze failed: %s" (Violet.Pipeline.error_to_string e)
  | Ok a ->
    let path = Filename.temp_file "vfuzz-pipe" ".vmodel" in
    Fun.protect
      ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
      (fun () ->
        (match Violet.Pipeline.export_model a.Violet.Pipeline.model path with
        | Ok () -> ()
        | Error m -> Alcotest.failf "export failed: %s" m);
        match Violet.Pipeline.import_model path with
        | Error m -> Alcotest.failf "import failed: %s" m
        | Ok model' ->
          check Alcotest.string "canonical text identical"
            (Vmodel.Impact_model.to_string a.Violet.Pipeline.model)
            (Vmodel.Impact_model.to_string model'))

let tests =
  [
    tc "sprng deterministic" test_sprng_deterministic;
    tc "sprng bounds" test_sprng_bounds;
    tc "sprng split independence" test_sprng_split_independent;
    tc "sprng shuffle permutes" test_sprng_shuffle_permutes;
    tc "generator deterministic" test_generate_deterministic;
    tc "generator valid and lowers" test_generate_valid_and_lowers;
    tc "plant default is good value" test_generate_plant_default_is_good;
    QCheck_alcotest.to_alcotest prop_spec_roundtrip;
    tc "spec rejects garbage" test_spec_rejects_garbage;
    tc "mutate kinds" test_mutate_kinds;
    tc "mutate swap updates ground truth" test_mutate_swap_updates_ground_truth;
    tc "mutate fraction" test_mutate_fraction;
    tc "harness scores plants" test_harness_scores_plants;
    tc "oracle agrees in process" test_oracle_agrees_in_process;
    tc "oracle daemon leg" test_oracle_daemon_leg;
    tc "oracle incremental leg" test_oracle_inc_leg;
    tc "shrink candidates valid and smaller" test_shrink_candidates_valid_and_smaller;
    tc "shrink minimizes" test_shrink_minimizes;
    QCheck_alcotest.to_alcotest prop_export_import_roundtrip;
    tc "export/import pipeline model" test_export_import_pipeline_model;
  ]
