(* Tests for the checker: config-file parsing, test-case generation and the
   three checker modes (paper Section 4.7). *)

module CF = Vchecker.Config_file
module TC = Vchecker.Test_case
module Checker = Vchecker.Checker
module M = Vmodel.Impact_model

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

let parse_exn text = CF.parse text

(* ------------------------------------------------------------------ *)
(* Config_file                                                         *)
(* ------------------------------------------------------------------ *)

let test_parse_basics () =
  let f =
    parse_exn
      "# a comment\n[mysqld]\nautocommit = ON\n  flush = 2  # trailing comment\n\n; semi\nskip-locking\n"
  in
  check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.string))
    "bindings"
    [ "autocommit", "ON"; "flush", "2"; "skip-locking", "ON" ]
    (CF.bindings f);
  check (Alcotest.option Alcotest.string) "lookup" (Some "2") (CF.lookup f "flush")

let test_parse_later_wins () =
  let f = parse_exn "x = 1\nx = 2\n" in
  check (Alcotest.option Alcotest.string) "later wins" (Some "2") (CF.lookup f "x");
  check Alcotest.int "single binding" 1 (List.length (CF.bindings f))

let test_parse_errors () =
  (* recovery: bad lines become issues, good lines survive *)
  let f = CF.parse " = 3\n[oops\nok = 1\n" in
  check Alcotest.int "two issues" 2 (List.length (CF.issues f));
  check
    (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.string))
    "issue lines"
    [ 1, "empty key"; 2, "malformed section header" ]
    (CF.issues f);
  check (Alcotest.option Alcotest.string) "good line survives" (Some "1") (CF.lookup f "ok")

let test_changed_keys () =
  let old_file = parse_exn "a = 1\nb = 2\nc = 3\n" in
  let new_file = parse_exn "a = 1\nb = 9\nd = 4\n" in
  check
    (Alcotest.list
       (Alcotest.triple Alcotest.string
          (Alcotest.option Alcotest.string)
          (Alcotest.option Alcotest.string)))
    "changes"
    [ "b", Some "2", Some "9"; "c", Some "3", None; "d", None, Some "4" ]
    (CF.changed_keys ~old_file ~new_file)

let test_to_assignment () =
  let reg = Fixtures.registry in
  let f = parse_exn "autocommit = OFF\nplugin_xyz = 1\n" in
  match CF.to_assignment reg f with
  | Ok (assignment, unknown) ->
    check (Alcotest.option Alcotest.int) "override applied" (Some 0)
      (List.assoc_opt "autocommit" assignment);
    check (Alcotest.option Alcotest.int) "default kept" (Some 1)
      (List.assoc_opt "flush_at_trx_commit" assignment);
    check (Alcotest.list Alcotest.string) "unknown keys" [ "plugin_xyz" ] unknown
  | Error e -> Alcotest.fail e

let test_to_assignment_invalid_value () =
  let reg = Fixtures.registry in
  let f = parse_exn "flush_at_trx_commit = 99\n" in
  check Alcotest.bool "invalid rejected" true (Result.is_error (CF.to_assignment reg f))

(* ------------------------------------------------------------------ *)
(* Test_case                                                           *)
(* ------------------------------------------------------------------ *)

let test_testcase_generation () =
  let kind =
    Vsmt.Expr.{ name = "kind"; dom = Vsmt.Dom.enum "kind" [ "R"; "W" ]; origin = Workload }
  in
  match TC.of_predicate Vsmt.Expr.[ of_var kind ==. const 1 ] with
  | Some tcase ->
    check (Alcotest.option Alcotest.int) "solved" (Some 1)
      (List.assoc_opt "kind" tcase.TC.workload);
    check Alcotest.bool "description mentions W" true
      (String.length tcase.TC.description > 0
      && List.exists (String.equal "kind=W")
           (String.split_on_char ' ' tcase.TC.description))
  | None -> Alcotest.fail "expected a test case"

let test_testcase_empty_predicate () =
  match TC.of_predicate [] with
  | Some tcase -> check Alcotest.string "any workload" "any workload" tcase.TC.description
  | None -> Alcotest.fail "expected a case"

let test_testcase_unsat () =
  let kind =
    Vsmt.Expr.{ name = "kind"; dom = Vsmt.Dom.bool; origin = Workload }
  in
  check Alcotest.bool "unsat gives none" true
    (TC.of_predicate Vsmt.Expr.[ of_var kind ==. const 1; of_var kind ==. const 0 ] = None)

(* ------------------------------------------------------------------ *)
(* Checker modes, on the Figure-3 fixture                              *)
(* ------------------------------------------------------------------ *)

let fixture_model () =
  (Violet.Pipeline.analyze_exn Fixtures.target "autocommit").Violet.Pipeline.model

let test_mode2_flags_poor_default () =
  let model = fixture_model () in
  (* autocommit defaults to ON and flush defaults to 1: the poor state *)
  let file = parse_exn "" in
  match Checker.check_current ~model ~registry:Fixtures.registry ~file () with
  | Ok report ->
    check Alcotest.bool "flagged" true (report.Checker.findings <> []);
    let f = List.hd report.Checker.findings in
    check Alcotest.bool "has test case" true (f.Checker.test_case <> None);
    check Alcotest.bool "ratio large" true (f.Checker.ratio > 2.)
  | Error e -> Alcotest.fail e

let test_mode2_good_config_silent () =
  let model = fixture_model () in
  let file = parse_exn "autocommit = OFF\n" in
  match Checker.check_current ~model ~registry:Fixtures.registry ~file () with
  | Ok report -> check Alcotest.int "silent" 0 (List.length report.Checker.findings)
  | Error e -> Alcotest.fail e

let test_mode1_update_regression () =
  let model = fixture_model () in
  let old_file = parse_exn "autocommit = OFF\n" in
  let new_file = parse_exn "autocommit = ON\nflush_at_trx_commit = 1\n" in
  (match Checker.check_update ~model ~registry:Fixtures.registry ~old_file ~new_file () with
  | Ok report -> check Alcotest.bool "regression flagged" true (report.Checker.findings <> [])
  | Error e -> Alcotest.fail e);
  (* reverse direction is an improvement: silent *)
  match
    Checker.check_update ~model ~registry:Fixtures.registry ~old_file:new_file
      ~new_file:old_file ()
  with
  | Ok report -> check Alcotest.int "improvement silent" 0 (List.length report.Checker.findings)
  | Error e -> Alcotest.fail e

let test_mode1_unrelated_change_silent () =
  let model = fixture_model () in
  let old_file = parse_exn "unused_param = OFF\n" in
  let new_file = parse_exn "unused_param = ON\n" in
  match Checker.check_update ~model ~registry:Fixtures.registry ~old_file ~new_file () with
  | Ok report -> check Alcotest.int "silent" 0 (List.length report.Checker.findings)
  | Error e -> Alcotest.fail e

let test_mode3_code_upgrade () =
  (* "new version" makes the flush path pricier: a slow environment stands in
     for a code change that makes the same constraint-states slower *)
  let old_model = fixture_model () in
  let opts =
    { Violet.Pipeline.default_options with Violet.Pipeline.env = Vruntime.Hw_env.hdd_server }
  in
  ignore opts;
  let slow_env =
    { Vruntime.Hw_env.hdd_server with Vruntime.Hw_env.fsync_us = 40000. }
  in
  let new_model =
    (Violet.Pipeline.analyze_exn
       ~opts:{ Violet.Pipeline.default_options with Violet.Pipeline.env = slow_env }
       Fixtures.target "autocommit")
      .Violet.Pipeline.model
  in
  let report = Checker.check_upgrade ~old_model ~new_model () in
  check Alcotest.bool "upgrade regression found" true (report.Checker.findings <> []);
  (* no change: silent *)
  let same = Checker.check_upgrade ~old_model ~new_model:old_model () in
  check Alcotest.int "same model silent" 0 (List.length same.Checker.findings)

let test_mode3_workload_change () =
  let model = fixture_model () in
  (* reads -> writes moves the system into the autocommit poor state *)
  let report =
    Checker.check_workload_change ~model
      ~old_workload:[ "sql_command", 0 ]
      ~new_workload:[ "sql_command", 1 ] ()
  in
  check Alcotest.bool "workload shift flagged" true (report.Checker.findings <> [])

let with_degradation model =
  let autocommit =
    Vsmt.Expr.{ name = "autocommit"; dom = Vsmt.Dom.bool; origin = Config }
  in
  {
    model with
    M.degradation =
      Some
        {
          M.rungs = [ "solver-light" ];
          deadline_hit = true;
          dropped_paths =
            [
              {
                M.dp_state_id = 9999;
                dp_config_constraints = Vsmt.Expr.[ of_var autocommit ==. const 1 ];
                dp_latency_so_far_us = 1234.;
              };
            ];
        };
  }

let test_mode3b_degraded_region () =
  let model = with_degradation (fixture_model ()) in
  (* the shifted workload may land in the dropped path's unknown-cost region,
     so even a "shift" within the same class must surface it conservatively *)
  let report =
    Checker.check_workload_change ~model
      ~old_workload:[ "sql_command", 0 ]
      ~new_workload:[ "sql_command", 0 ] ()
  in
  let degraded =
    List.filter (fun f -> String.equal f.Checker.trigger "degraded") report.Checker.findings
  in
  check Alcotest.bool "degraded region reported" true (degraded <> []);
  let f = List.hd degraded in
  check Alcotest.bool "unknown cost: no fast row" true (f.Checker.fast_row = None);
  check Alcotest.int "dropped state id" 9999 f.Checker.slow_row.Vmodel.Cost_row.state_id;
  (* a real shift reports both the shift findings and the widening *)
  let report =
    Checker.check_workload_change ~model
      ~old_workload:[ "sql_command", 0 ]
      ~new_workload:[ "sql_command", 1 ] ()
  in
  check Alcotest.bool "shift findings present" true
    (List.exists
       (fun f -> not (String.equal f.Checker.trigger "degraded"))
       report.Checker.findings);
  check Alcotest.bool "widening kept alongside" true
    (List.exists (fun f -> String.equal f.Checker.trigger "degraded") report.Checker.findings)

let test_checker_on_loaded_model () =
  (* the deployment path: the checker works on a model after disk round-trip *)
  let model = fixture_model () in
  let path = Filename.temp_file "violet_chk" ".sexp" in
  M.save model path;
  let model = match M.load path with Ok m -> m | Error e -> Alcotest.fail e in
  Sys.remove path;
  let file = parse_exn "" in
  match Checker.check_current ~model ~registry:Fixtures.registry ~file () with
  | Ok report -> check Alcotest.bool "still flags" true (report.Checker.findings <> [])
  | Error e -> Alcotest.fail e

let tests =
  [
    tc "parse basics" test_parse_basics;
    tc "parse later wins" test_parse_later_wins;
    tc "parse errors" test_parse_errors;
    tc "changed keys" test_changed_keys;
    tc "to_assignment" test_to_assignment;
    tc "to_assignment invalid" test_to_assignment_invalid_value;
    tc "test case generation" test_testcase_generation;
    tc "test case empty predicate" test_testcase_empty_predicate;
    tc "test case unsat" test_testcase_unsat;
    tc "mode 2 flags poor default" test_mode2_flags_poor_default;
    tc "mode 2 good config silent" test_mode2_good_config_silent;
    tc "mode 1 update regression" test_mode1_update_regression;
    tc "mode 1 unrelated change silent" test_mode1_unrelated_change_silent;
    tc "mode 3 code upgrade" test_mode3_code_upgrade;
    tc "mode 3 workload change" test_mode3_workload_change;
    tc "mode 3b degraded region widening" test_mode3b_degraded_region;
    tc "checker on loaded model" test_checker_on_loaded_model;
  ]
