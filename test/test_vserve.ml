(* Tests for the serving layer: wire-protocol round-trips (QCheck), the
   model registry's crash/corruption behavior, request batching, and an
   end-to-end daemon whose answers must be byte-identical to the in-process
   checker. *)

module W = Vserve.Wire
module P = Vserve.Protocol
module Reg = Vserve.Registry
module Server = Vserve.Server
module Client = Vserve.Client
module Checker = Vchecker.Checker
module Row = Vmodel.Cost_row
module M = Vmodel.Impact_model
module TC = Vchecker.Test_case

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f
let qt = QCheck_alcotest.to_alcotest

let or_fail = function Ok v -> v | Error e -> Alcotest.fail e

let mk_tmpdir () =
  let path = Filename.temp_file "vserve" "" in
  Sys.remove path;
  Unix.mkdir path 0o700;
  path

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Unix.rmdir path
  end
  else Sys.remove path

let fixture_model =
  let m = lazy (Violet.Pipeline.analyze_exn Fixtures.target "autocommit").Violet.Pipeline.model in
  fun () -> Lazy.force m

(* ------------------------------------------------------------------ *)
(* Wire: canonical JSON                                                *)
(* ------------------------------------------------------------------ *)

(* any byte can appear in a string (control characters get escaped, the rest
   pass through raw, so UTF-8 and even non-UTF-8 bytes survive) *)
let gen_str = QCheck2.Gen.(small_string ~gen:char)

(* finite floats only: the protocol never produces nan/inf (they render as
   null), so the round-trip property quantifies over finite values *)
let gen_float =
  QCheck2.Gen.(
    map (fun (m, e) -> ldexp (float_of_int m) e)
      (pair (int_range (-1_000_000) 1_000_000) (int_range (-30) 30)))

let gen_wire =
  QCheck2.Gen.(
    sized
    @@ fix (fun self n ->
           let leaf =
             oneof
               [
                 return W.Null;
                 map (fun b -> W.Bool b) bool;
                 map (fun i -> W.Int i) int;
                 map (fun f -> W.Float f) gen_float;
                 map (fun s -> W.String s) gen_str;
               ]
           in
           if n <= 0 then leaf
           else
             frequency
               [
                 (3, leaf);
                 (1, map (fun l -> W.List l) (list_size (int_range 0 4) (self (n / 2))));
                 ( 1,
                   map
                     (fun fs -> W.Obj fs)
                     (list_size (int_range 0 4) (pair gen_str (self (n / 2)))) );
               ]))

let prop_wire_roundtrip =
  QCheck2.Test.make ~name:"wire values survive print -> parse canonically" ~count:500
    gen_wire (fun v ->
      let s = W.to_string v in
      match W.of_string s with
      | Ok v' -> String.equal (W.to_string v') s
      | Error _ -> false)

(* ------------------------------------------------------------------ *)
(* Protocol: request/response round-trips                              *)
(* ------------------------------------------------------------------ *)

let gen_workload =
  QCheck2.Gen.(small_list (pair gen_str (int_range (-1000) 1000)))

let gen_request =
  QCheck2.Gen.(
    oneof
      [
        map2 (fun key config -> P.Check_current { key; config }) gen_str gen_str;
        map3
          (fun key old_config new_config -> P.Check_update { key; old_config; new_config })
          gen_str gen_str gen_str;
        map2
          (fun key workloads -> P.Check_upgrade { key; workloads })
          gen_str
          (option (pair gen_workload gen_workload));
        return P.Health;
        return P.Stats;
        return P.Reload_stage;
        return P.Reload_commit;
        return P.Shutdown;
      ])

let prop_request_roundtrip =
  QCheck2.Test.make ~name:"requests survive encode -> decode byte-identically"
    ~count:500
    QCheck2.Gen.(pair (int_range 0 1_000_000) gen_request)
    (fun (id, req) ->
      let line = P.encode_request ~id req in
      match P.decode_request line with
      | Error _ -> false
      | Ok (id', req') ->
        id' = Some id && String.equal (P.encode_request ~id req') line)

(* findings with generated rows: constraints come from a small expression
   pool (round-tripped through the same sexp serialization models use) *)
let expr_pool =
  let v name dom origin = Vsmt.Expr.{ name; dom; origin } in
  Vsmt.Expr.
    [
      of_var (v "autocommit" Vsmt.Dom.bool Config) ==. const 1;
      of_var (v "flush" (Vsmt.Dom.int_range 0 2) Config) ==. const 0;
      of_var (v "kind" (Vsmt.Dom.enum "kind" [ "R"; "W" ]) Workload) ==. const 1;
      of_var (v "n" (Vsmt.Dom.int_range 0 7) Config) >. const 4;
    ]

let gen_cost =
  QCheck2.Gen.(
    map3
      (fun lat (i1, i2, i3) (i4, i5, i6) ->
        {
          Vruntime.Cost.latency_us = lat;
          instructions = i1;
          syscalls = i2;
          io_calls = i3;
          io_bytes = i4;
          sync_ops = i5;
          net_ops = i6;
          allocations = 0;
          cache_ops = 0;
        })
      gen_float
      (triple small_nat small_nat small_nat)
      (triple small_nat small_nat small_nat))

let gen_row =
  QCheck2.Gen.(
    map3
      (fun state_id (config_constraints, workload_pred) (cost, traced, chain, ops) ->
        {
          Row.state_id;
          config_constraints;
          workload_pred;
          cost;
          traced_latency_us = traced;
          chain;
          nodes = [];
          critical_ops = ops;
        })
      small_nat
      (pair (small_list (oneofl expr_pool)) (small_list (oneofl expr_pool)))
      (quad gen_cost gen_float (small_list gen_str) (small_list gen_str)))

let gen_finding =
  QCheck2.Gen.(
    map3
      (fun (param, message, trigger) (slow_row, fast_row) (ratio, critical_path, test_case) ->
        {
          Checker.param;
          message;
          slow_row;
          fast_row;
          ratio;
          trigger;
          critical_path;
          test_case;
        })
      (triple gen_str gen_str gen_str)
      (pair gen_row (option gen_row))
      (triple gen_float (small_list gen_str)
         (option
            (map2
               (fun workload description -> { TC.workload; description })
               gen_workload gen_str))))

let gen_response =
  QCheck2.Gen.(
    oneof
      [
        map3
          (fun findings (generation, checked_in_s) (batched, coalesced, degraded) ->
            P.Report
              { P.findings; checked_in_s; generation; batched; coalesced; degraded })
          (small_list gen_finding)
          (pair small_nat gen_float)
          (triple bool bool bool);
        map2
          (fun status models -> P.Health_info { status; models })
          gen_str
          (small_list
             (map3
                (fun mi_key mi_generation mi_digest -> { P.mi_key; mi_generation; mi_digest })
                gen_str small_nat gen_str));
        map (fun w -> P.Stats_info w) gen_wire;
        map3
          (fun phase ok entries -> P.Reload_info { phase; ok; entries })
          (oneofl [ "stage"; "commit" ])
          bool
          (small_list (pair gen_str gen_str));
        map2
          (fun code message -> P.Error_resp { code; message })
          (oneofl [ P.Overloaded; P.Bad_request; P.Unknown_model; P.Check_failed; P.Shutting_down ])
          gen_str;
        return P.Bye;
      ])

let prop_response_roundtrip =
  QCheck2.Test.make ~name:"responses survive encode -> decode byte-identically"
    ~count:300
    QCheck2.Gen.(pair (int_range 0 1_000_000) gen_response)
    (fun (id, resp) ->
      let line = P.encode_response ~id resp in
      match P.decode_response line with
      | Error _ -> false
      | Ok (id', resp') ->
        id' = Some id && String.equal (P.encode_response ~id resp') line)

let test_nonascii_and_no_fast_row () =
  (* the satellite cases pinned explicitly: a finding for an unknown-cost
     region (fast_row = None) whose strings carry non-ASCII bytes *)
  let slow_row =
    {
      Row.state_id = 7;
      config_constraints = [ List.hd expr_pool ];
      workload_pred = [];
      cost = { Vruntime.Cost.zero with Vruntime.Cost.latency_us = 42.5 };
      traced_latency_us = 42.5;
      chain = [ "größe"; "キー" ];
      nodes = [];
      critical_ops = [];
    }
  in
  let finding =
    {
      Checker.param = "innodb_büffer_größe";
      message = "значение 🦊 may be specious";
      slow_row;
      fast_row = None;
      ratio = 0.;
      trigger = "degraded";
      critical_path = [];
      test_case = None;
    }
  in
  let wire = P.findings_to_wire [ finding ] in
  let s = W.to_string wire in
  let decoded = or_fail (P.findings_of_wire (or_fail (W.of_string s))) in
  check Alcotest.string "byte-identical re-encode" s
    (W.to_string (P.findings_to_wire decoded));
  (match decoded with
  | [ f ] ->
    check Alcotest.bool "fast_row stays None" true (f.Checker.fast_row = None);
    check Alcotest.string "non-ASCII param intact" "innodb_büffer_größe" f.Checker.param
  | _ -> Alcotest.fail "expected one finding");
  (* non-ASCII config text reaches the checker unchanged *)
  let req = P.Check_current { key = "mini"; config = "comment = \"значение 🦊\"\n" } in
  match P.decode_request (P.encode_request ~id:3 req) with
  | Ok (Some 3, req') ->
    check Alcotest.string "config bytes intact" (P.encode_request ~id:3 req)
      (P.encode_request ~id:3 req')
  | _ -> Alcotest.fail "request round-trip failed"

(* ------------------------------------------------------------------ *)
(* Registry                                                            *)
(* ------------------------------------------------------------------ *)

let export_fixture ?(tweak = fun m -> m) dir key =
  let path = Reg.model_file ~dir ~key in
  or_fail (Violet.Pipeline.export_model (tweak (fixture_model ())) path);
  path

let test_registry_load_and_reject () =
  let dir = mk_tmpdir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let path = export_fixture dir "mini" in
  let reg = Reg.create ~dir () in
  (match Reg.refresh reg with
  | [ Reg.Loaded { key = "mini"; generation = 1 } ] -> ()
  | evs ->
    Alcotest.fail
      ("unexpected events: " ^ String.concat "; " (List.map Reg.event_to_string evs)));
  let e1 = Option.get (Reg.find reg "mini") in
  check Alcotest.string "target" "autocommit" e1.Reg.model.M.target;
  check Alcotest.bool "no previous on first load" true (e1.Reg.previous = None);
  (* corrupt the file the way a kill -9 mid-write leaves it: a truncated
     prefix whose checksum cannot match the envelope *)
  let good = In_channel.with_open_bin path In_channel.input_all in
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc (String.sub good 0 (String.length good / 2)));
  (match Reg.refresh ~force:true reg with
  | [ Reg.Rejected { key = "mini"; _ } ] -> ()
  | evs ->
    Alcotest.fail
      ("expected a rejection: " ^ String.concat "; " (List.map Reg.event_to_string evs)));
  check Alcotest.int "one load failure" 1 (Reg.load_failures reg);
  (* the old generation keeps serving, untouched *)
  let e1' = Option.get (Reg.find reg "mini") in
  check Alcotest.int "generation still 1" 1 e1'.Reg.generation;
  check Alcotest.string "same digest" e1.Reg.digest e1'.Reg.digest;
  (* a bit-flip (right length, wrong checksum) is also rejected *)
  let flipped = Bytes.of_string good in
  let mid = String.length good - 1 in
  Bytes.set flipped mid (Char.chr (Char.code (Bytes.get flipped mid) lxor 0xff));
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_bytes oc flipped);
  (match Reg.refresh ~force:true reg with
  | [ Reg.Rejected _ ] -> ()
  | _ -> Alcotest.fail "checksum mismatch must be rejected");
  check Alcotest.int "generation survives bit-flip" 1
    (Option.get (Reg.find reg "mini")).Reg.generation;
  (* a good replacement loads as generation 2, keeping generation 1 as
     [previous] for the mode-3a upgrade check *)
  let _ = export_fixture ~tweak:(fun m -> { m with M.threshold = 0.9 }) dir "mini" in
  (match Reg.refresh ~force:true reg with
  | [ Reg.Loaded { key = "mini"; generation = 2 } ] -> ()
  | _ -> Alcotest.fail "expected generation 2");
  let e2 = Option.get (Reg.find reg "mini") in
  check Alcotest.bool "previous retained" true (e2.Reg.previous <> None);
  check Alcotest.bool "threshold updated" true (e2.Reg.model.M.threshold = 0.9)

let test_registry_two_phase () =
  let dir = mk_tmpdir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let path = export_fixture dir "mini" in
  let reg = Reg.create ~dir () in
  ignore (Reg.refresh reg);
  (* commit without a stage is refused *)
  (match Reg.commit reg with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "commit without stage must be refused");
  (* stage a replacement: validated and parked, not serving *)
  let _ = export_fixture ~tweak:(fun m -> { m with M.threshold = 0.9 }) dir "mini" in
  (match Reg.stage reg with
  | [ ("mini", Ok _) ] -> ()
  | r ->
    Alcotest.fail
      (Printf.sprintf "unexpected stage results (%d entries)" (List.length r)));
  check Alcotest.bool "staged set parked" true (Reg.staged reg);
  check Alcotest.int "still serving generation 1" 1
    (Option.get (Reg.find reg "mini")).Reg.generation;
  (* commit flips to generation 2 atomically, retaining history *)
  (match Reg.commit reg with
  | Ok [ Reg.Loaded { key = "mini"; generation = 2 } ] -> ()
  | Ok evs ->
    Alcotest.fail
      ("unexpected commit events: " ^ String.concat "; " (List.map Reg.event_to_string evs))
  | Error e -> Alcotest.fail ("commit failed: " ^ e));
  let e = Option.get (Reg.find reg "mini") in
  check Alcotest.int "generation 2 serving" 2 e.Reg.generation;
  check Alcotest.bool "previous retained for mode 3a" true (e.Reg.previous <> None);
  check Alcotest.bool "staged set consumed" false (Reg.staged reg);
  (* a corrupt file poisons the whole stage round: nothing is parked and
     the serving generation is untouched *)
  let good = In_channel.with_open_bin path In_channel.input_all in
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc (String.sub good 0 (String.length good / 2)));
  (match Reg.stage reg with
  | [ ("mini", Error _) ] -> ()
  | _ -> Alcotest.fail "corrupt file must fail the stage");
  check Alcotest.bool "nothing staged after corrupt round" false (Reg.staged reg);
  (match Reg.commit reg with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "commit after failed stage must be refused");
  check Alcotest.int "generation 2 still serving" 2
    (Option.get (Reg.find reg "mini")).Reg.generation

let test_registry_removal () =
  let dir = mk_tmpdir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let path = export_fixture dir "mini" in
  let reg = Reg.create ~dir () in
  ignore (Reg.refresh reg);
  Sys.remove path;
  (match Reg.refresh reg with
  | [ Reg.Removed "mini" ] -> ()
  | _ -> Alcotest.fail "expected removal");
  check Alcotest.bool "entry gone" true (Reg.find reg "mini" = None)

(* ------------------------------------------------------------------ *)
(* Batcher                                                             *)
(* ------------------------------------------------------------------ *)

let test_batcher_groups_and_coalesces () =
  let items = [| ("a", 1); ("a", 1); ("a", 2); ("b", 9) |] in
  let execs = Atomic.make 0 in
  let results, stats =
    Vserve.Batcher.run ~jobs:1
      ~group_of:(fun (g, _) -> g)
      ~dedup_of:(fun (g, v) -> Printf.sprintf "%s=%d" g v)
      ~exec:(fun (g, v) ->
        Atomic.incr execs;
        Printf.sprintf "%s:%d" g v)
      items
  in
  check Alcotest.int "distinct executions" 3 (Atomic.get execs);
  let expect = [| ("a:1", true, false); ("a:1", true, true); ("a:2", true, false); ("b:9", false, false) |] in
  Array.iteri
    (fun i (r, b, c) ->
      let er, eb, ec = expect.(i) in
      check Alcotest.string (Printf.sprintf "result %d" i) er r;
      check Alcotest.bool (Printf.sprintf "batched %d" i) eb b;
      check Alcotest.bool (Printf.sprintf "coalesced %d" i) ec c)
    results;
  check Alcotest.int "groups" 2 stats.Vserve.Batcher.groups;
  check Alcotest.int "batched requests" 3 stats.Vserve.Batcher.batched_requests;
  check Alcotest.int "coalesced" 1 stats.Vserve.Batcher.coalesced

(* ------------------------------------------------------------------ *)
(* End to end: daemon answers == in-process checker answers             *)
(* ------------------------------------------------------------------ *)

let findings_bytes fs = W.to_string (P.findings_to_wire fs)

let expect_report = function
  | P.Report o -> o
  | P.Error_resp { code; message } ->
    Alcotest.fail
      (Printf.sprintf "daemon error %s: %s" (P.error_code_to_string code) message)
  | _ -> Alcotest.fail "expected a report"

let test_end_to_end () =
  let dir = mk_tmpdir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let models_dir = Filename.concat dir "models" in
  Unix.mkdir models_dir 0o700;
  let model_path = export_fixture models_dir "mini" in
  let sock = Filename.concat dir "d.sock" in
  let opts =
    {
      (Server.default_options ~addr:(`Unix sock) ~models_dir) with
      Server.resolve_registry = (fun _ -> Some Fixtures.registry);
      refresh_every_s = 0.05;
      jobs = 1;
    }
  in
  let srv = Domain.spawn (fun () -> Server.run opts) in
  let c = or_fail (Client.connect_retry (`Unix sock)) in
  (* the in-process reference runs on the very same model file the daemon
     serves (the deployment path: export once, check everywhere) *)
  let ref_model = or_fail (Violet.Pipeline.import_model model_path) in
  (* mode 2 byte-identity *)
  let local =
    or_fail
      (Checker.check_current ~model:ref_model ~registry:Fixtures.registry
         ~file:(Vchecker.Config_file.parse "") ())
  in
  let served = expect_report (or_fail (Client.call c (P.Check_current { key = "mini"; config = "" }))) in
  check Alcotest.string "mode 2 findings byte-identical"
    (findings_bytes local.Checker.findings)
    (findings_bytes served.P.findings);
  check Alcotest.bool "fixture default is flagged" true (served.P.findings <> []);
  check Alcotest.int "served by generation 1" 1 served.P.generation;
  check Alcotest.bool "not degraded" true (not served.P.degraded);
  (* mode 1 byte-identity *)
  let old_text = "autocommit = OFF\n" in
  let new_text = "autocommit = ON\nflush_at_trx_commit = 1\n" in
  let local =
    or_fail
      (Checker.check_update ~model:ref_model ~registry:Fixtures.registry
         ~old_file:(Vchecker.Config_file.parse old_text)
         ~new_file:(Vchecker.Config_file.parse new_text) ())
  in
  let served =
    expect_report
      (or_fail
         (Client.call c
            (P.Check_update { key = "mini"; old_config = old_text; new_config = new_text })))
  in
  check Alcotest.string "mode 1 findings byte-identical"
    (findings_bytes local.Checker.findings)
    (findings_bytes served.P.findings);
  (* mode 3b byte-identity *)
  let old_workload = [ ("sql_command", 0) ] and new_workload = [ ("sql_command", 1) ] in
  let local = Checker.check_workload_change ~model:ref_model ~old_workload ~new_workload () in
  let served =
    expect_report
      (or_fail
         (Client.call c
            (P.Check_upgrade { key = "mini"; workloads = Some (old_workload, new_workload) })))
  in
  check Alcotest.string "mode 3b findings byte-identical"
    (findings_bytes local.Checker.findings)
    (findings_bytes served.P.findings);
  check Alcotest.bool "workload shift flagged over the wire" true (served.P.findings <> []);
  (* mode 3a needs a previous generation: none yet *)
  (match or_fail (Client.call c (P.Check_upgrade { key = "mini"; workloads = None })) with
  | P.Error_resp { code = P.Check_failed; _ } -> ()
  | _ -> Alcotest.fail "mode 3a without history must fail");
  (* error paths *)
  (match or_fail (Client.call c (P.Check_current { key = "nope"; config = "" })) with
  | P.Error_resp { code = P.Unknown_model; _ } -> ()
  | _ -> Alcotest.fail "unknown key must be unknown-model");
  (match P.decode_response (or_fail (Client.call_raw c "{not json")) with
  | Ok (_, P.Error_resp { code = P.Bad_request; _ }) -> ()
  | _ -> Alcotest.fail "garbage line must be bad-request");
  (* health before reload *)
  (match or_fail (Client.call c P.Health) with
  | P.Health_info { status = "ok"; models = [ m ] } ->
    check Alcotest.string "health key" "mini" m.P.mi_key;
    check Alcotest.int "health generation" 1 m.P.mi_generation
  | _ -> Alcotest.fail "expected healthy with one model");
  (* hot reload: replace the model file, the daemon picks up generation 2
     without restarting *)
  let _ = export_fixture ~tweak:(fun m -> { m with M.threshold = 0.9 }) models_dir "mini" in
  let deadline = Unix.gettimeofday () +. 10. in
  let rec await_gen2 () =
    let served =
      expect_report (or_fail (Client.call c (P.Check_current { key = "mini"; config = "" })))
    in
    if served.P.generation >= 2 then served
    else if Unix.gettimeofday () > deadline then Alcotest.fail "hot reload never happened"
    else begin
      Unix.sleepf 0.05;
      await_gen2 ()
    end
  in
  let served = await_gen2 () in
  check Alcotest.int "hot-reloaded generation" 2 served.P.generation;
  (* with history, mode 3a answers (same rows, so no findings) *)
  let served3a =
    expect_report (or_fail (Client.call c (P.Check_upgrade { key = "mini"; workloads = None })))
  in
  check Alcotest.int "mode 3a clean upgrade" 0 (List.length served3a.P.findings);
  (* corrupt replacement: rejected, generation 2 keeps serving *)
  let good = In_channel.with_open_bin model_path In_channel.input_all in
  Out_channel.with_open_bin model_path (fun oc ->
      Out_channel.output_string oc (String.sub good 0 (String.length good / 2)));
  Unix.sleepf 0.3;
  let served =
    expect_report (or_fail (Client.call c (P.Check_current { key = "mini"; config = "" })))
  in
  check Alcotest.int "old generation live after corrupt swap" 2 served.P.generation;
  (* stats reflect everything above *)
  (match or_fail (Client.call c P.Stats) with
  | P.Stats_info w ->
    let int_field name =
      match Option.bind (W.member name w) W.to_int with
      | Some n -> n
      | None -> Alcotest.fail ("stats missing " ^ name)
    in
    check Alcotest.bool "requests counted" true (int_field "requests" >= 6);
    check Alcotest.bool "reloads counted" true (int_field "model_reloads" >= 2);
    check Alcotest.bool "load failure counted" true (int_field "model_load_failures" >= 1);
    check Alcotest.bool "compiles counted" true (int_field "model_compiles" >= 1);
    (match Option.bind (W.member "latency" w) (W.member "observations") with
    | Some (W.Int n) when n > 0 -> ()
    | _ -> Alcotest.fail "latency histogram must have observations")
  | _ -> Alcotest.fail "expected stats");
  (* clean shutdown *)
  (match or_fail (Client.call c P.Shutdown) with
  | P.Bye -> ()
  | _ -> Alcotest.fail "expected bye");
  Client.close c;
  (match Domain.join srv with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("server exited with: " ^ e));
  check Alcotest.bool "socket file removed" false (Sys.file_exists sock)

let tests =
  [
    qt prop_wire_roundtrip;
    qt prop_request_roundtrip;
    qt prop_response_roundtrip;
    tc "non-ASCII finding without fast row" test_nonascii_and_no_fast_row;
    tc "registry loads, rejects corruption, keeps serving" test_registry_load_and_reject;
    tc "registry two-phase stage and commit" test_registry_two_phase;
    tc "registry drops removed files" test_registry_removal;
    tc "batcher groups and coalesces" test_batcher_groups_and_coalesces;
    tc "end-to-end daemon matches in-process checker" test_end_to_end;
  ]
