(* Tests for the vsched subsystem: searcher parsing, path-set equivalence
   and determinism of every frontier, solver-cache correctness against the
   direct solver, the guided searchers actually guiding (fewer steps to the
   specious path than Bfs on the MySQL model), and the cache leaving the
   end-to-end impact model untouched. *)

module Ex = Vsymexec.Executor
module S = Vsymexec.Sym_state
module Sr = Vsched.Searcher
module Cache = Vsched.Solver_cache
module Stats = Vsched.Exploration_stats
module E = Vsmt.Expr
module Solver = Vsmt.Solver

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f
let env = Vruntime.Hw_env.hdd_server

let all_policies =
  [
    Ex.Dfs;
    Ex.Bfs;
    Ex.Random_path 11;
    Ex.Coverage_guided;
    Ex.Config_impact { related = [] };
    Ex.Config_impact { related = [ "autocommit" ] };
  ]

(* ------------------------------------------------------------------ *)
(* Searcher parsing                                                    *)
(* ------------------------------------------------------------------ *)

let test_of_string_roundtrip () =
  List.iter
    (fun p ->
      match Sr.of_string (Sr.to_string p) with
      | Ok p' -> check Alcotest.string "roundtrip" (Sr.to_string p) (Sr.to_string p')
      | Error msg -> Alcotest.fail msg)
    [ Sr.Dfs; Sr.Bfs; Sr.Random_path 42; Sr.Coverage_guided; Sr.Config_impact { related = [] } ];
  (match Sr.of_string "random:7" with
  | Ok (Sr.Random_path 7) -> ()
  | _ -> Alcotest.fail "random:7 should parse to a seeded searcher");
  check Alcotest.bool "garbage rejected" true (Result.is_error (Sr.of_string "zigzag"))

(* ------------------------------------------------------------------ *)
(* Path-set equivalence and determinism on the mini-MySQL fixture      *)
(* ------------------------------------------------------------------ *)

let fixture_run policy =
  let reg = Fixtures.registry in
  let opts =
    {
      (Ex.default_options ~env
         ~config:(fun n -> Vruntime.Config_registry.Values.lookup
                             (Vruntime.Config_registry.Values.defaults reg) n 0)
         ~workload:(fun _ -> 0)
         ())
      with
      Ex.sym_configs =
        [
          Ex.sym_config_var reg "autocommit";
          Ex.sym_config_var reg "flush_at_trx_commit";
          Ex.sym_config_var reg "log_buffer_size";
        ];
      sym_workloads = [ Ex.sym_workload_var Fixtures.workload "sql_command" ];
      policy;
    }
  in
  Ex.run opts Fixtures.program

let pc_signature (r : Ex.result) =
  r.Ex.states
  |> List.filter (fun (st : S.t) ->
         match st.S.status with S.Terminated _ -> true | _ -> false)
  |> List.map (fun (st : S.t) ->
         String.concat "&" (List.map E.to_string (List.sort compare st.S.pc)))
  |> List.sort String.compare

let test_same_path_set_as_dfs () =
  let dfs = pc_signature (fixture_run Ex.Dfs) in
  check Alcotest.bool "dfs explores several paths" true (List.length dfs >= 4);
  List.iter
    (fun policy ->
      check
        (Alcotest.list Alcotest.string)
        (Sr.to_string policy ^ " = dfs") dfs
        (pc_signature (fixture_run policy)))
    all_policies

let completion_order (r : Ex.result) =
  List.map (fun (c : Stats.completion) -> c.Stats.state_id) r.Ex.sched.Stats.completions

let test_deterministic_ordering () =
  (* every searcher, including the seeded and the scored ones, completes
     states in the same order when run twice on the same program *)
  List.iter
    (fun policy ->
      check
        (Alcotest.list Alcotest.int)
        (Sr.to_string policy ^ " deterministic")
        (completion_order (fixture_run policy))
        (completion_order (fixture_run policy)))
    all_policies

let test_telemetry_consistent () =
  let r = fixture_run Ex.Bfs in
  let sched = r.Ex.sched in
  (* a two-way fork retires the parent and mints two children, so the leaf
     count — states that reach a terminal status — is forks + 1 *)
  check Alcotest.int "every leaf state completes"
    (Stdlib.( + ) sched.Stats.forks 1)
    (Stdlib.( + ) sched.Stats.states_completed sched.Stats.states_dropped);
  check Alcotest.int "completions listed"
    (Stdlib.( + ) sched.Stats.states_completed sched.Stats.states_dropped)
    (List.length sched.Stats.completions);
  check Alcotest.int "solver query count matches headline stats"
    r.Ex.stats.Ex.solver_calls sched.Stats.solver_queries;
  check Alcotest.bool "queue was sampled" true (sched.Stats.queue_samples <> []);
  (* the JSON dump is parseable enough to contain the headline numbers *)
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  let json = Stats.to_json sched in
  check Alcotest.bool "json mentions searcher" true (contains json "\"searcher\":\"bfs\"")

(* ------------------------------------------------------------------ *)
(* Solver cache vs direct solver on randomized constraint sets         *)
(* ------------------------------------------------------------------ *)

let var name lo hi = E.{ name; dom = Vsmt.Dom.int_range lo hi; origin = Config }
let qa = var "qa" 0 1
let qb = var "qb" 0 7
let qc = var "qc" 0 7

let atom_gen =
  QCheck2.Gen.(
    let open E in
    let v = oneofl [ qa; qb; qc ] in
    let cmp = oneofl [ ( ==. ); ( <>. ); ( <. ); ( >. ); ( <=. ); ( >=. ) ] in
    oneof
      [
        (v >>= fun x -> cmp >>= fun op -> int_range 0 8 >>= fun k ->
         return (op (of_var x) (const k)));
        (v >>= fun x -> v >>= fun y -> cmp >>= fun op -> int_range 0 12 >>= fun k ->
         return (op (binop Add (of_var x) (of_var y)) (const k)));
      ])

let query_gen = QCheck2.Gen.(list_size (int_range 0 5) atom_gen)

let prop_cache_matches_solver =
  (* one cache instance across the whole sequence, so later queries hit the
     models and cores stored by earlier ones; each verdict must still agree
     with a fresh direct solve.  The domains are tiny, so the solver is
     decisive and the cache may not add or lose precision. *)
  let cache = Cache.create () in
  QCheck2.Test.make ~name:"cached verdicts match the direct solver" ~count:300
    query_gen (fun cs ->
      let direct = Solver.check ~max_nodes:4_000 cs in
      let feas = Cache.is_feasible cache ~max_nodes:4_000 cs in
      let model = Cache.check_model cache ~max_nodes:4_000 cs in
      let same_verdict =
        match direct with
        | Solver.Sat _ | Solver.Unknown -> feas
        | Solver.Unsat -> not feas
      in
      (* check_model is exact memoization of a deterministic solver: the
         result must be byte-identical, model values included *)
      same_verdict && model = direct)

let test_cache_hits_accumulate () =
  let cache = Cache.create () in
  let cs = E.[ of_var qb >. const 3; of_var qb <. const 6 ] in
  ignore (Cache.is_feasible cache ~max_nodes:4_000 cs);
  ignore (Cache.is_feasible cache ~max_nodes:4_000 cs);
  (* a superset of a satisfiable set: served by the counterexample probe
     without a new solve whenever the stored model satisfies it *)
  ignore (Cache.is_feasible cache ~max_nodes:4_000 (E.(of_var qa >=. const 0) :: cs));
  let s = Cache.stats cache in
  check Alcotest.int "lookups" 3 s.Cache.lookups;
  check Alcotest.bool "hits" true (Cache.hits s >= 1);
  check Alcotest.bool "rate" true (Cache.hit_rate s > 0.);
  (* an unsat set, then a superset of it: subsumption *)
  let unsat = E.[ of_var qb >. const 5; of_var qb <. const 3 ] in
  check Alcotest.bool "unsat" false (Cache.is_feasible cache ~max_nodes:4_000 unsat);
  check Alcotest.bool "superset unsat" false
    (Cache.is_feasible cache ~max_nodes:4_000 (E.(of_var qa ==. const 1) :: unsat));
  let s = Cache.stats cache in
  check Alcotest.bool "subsumption used" true (s.Cache.subsumption_hits >= 1)

(* regression: entries are keyed on the sorted constraint set, so a permuted
   path condition is the same query — an exact hit, identical verdict and
   model, no new solve *)
let test_cache_key_order_insensitive () =
  let cache = Cache.create () in
  let cs = E.[ of_var qb >. const 3; of_var qa ==. const 1; of_var qc <. const 5 ] in
  let direct = Cache.check_model cache ~max_nodes:4_000 cs in
  let s0 = Cache.stats cache in
  let permuted = [ List.nth cs 2; List.nth cs 0; List.nth cs 1 ] in
  let again = Cache.check_model cache ~max_nodes:4_000 permuted in
  let s1 = Cache.stats cache in
  check Alcotest.bool "permuted query returns the identical result" true
    (again = direct);
  check Alcotest.int "permuted query does not re-solve" s0.Cache.misses s1.Cache.misses;
  check Alcotest.bool "it is an exact hit" true (s1.Cache.exact_hits > s0.Cache.exact_hits);
  (* same contract on the feasibility path *)
  let feas = Cache.is_feasible cache ~max_nodes:4_000 cs in
  let s2 = Cache.stats cache in
  check Alcotest.bool "reversed feasibility query agrees" feas
    (Cache.is_feasible cache ~max_nodes:4_000 (List.rev cs));
  let s3 = Cache.stats cache in
  check Alcotest.int "reversed feasibility query does not re-solve" s2.Cache.misses
    s3.Cache.misses

(* merging a worker shard must make its entries serve future queries on the
   destination — the mechanism behind the parallel executor's quiesce *)
let test_cache_merge_serves_shard_entries () =
  let dst = Cache.create () in
  let src = Cache.create () in
  let cs_dst = E.[ of_var qb >. const 3 ] in
  let cs_src = E.[ of_var qc <. const 2; of_var qa ==. const 0 ] in
  ignore (Cache.check_model dst ~max_nodes:4_000 cs_dst);
  let expected = Cache.check_model src ~max_nodes:4_000 cs_src in
  Cache.merge_into ~src ~dst;
  let s0 = Cache.stats dst in
  let got = Cache.check_model dst ~max_nodes:4_000 (List.rev cs_src) in
  let s1 = Cache.stats dst in
  check Alcotest.bool "merged entry answers, order-insensitively" true
    (got = expected);
  check Alcotest.int "without a new solve" s0.Cache.misses s1.Cache.misses

(* ------------------------------------------------------------------ *)
(* The shared lock-striped cache behind the parallel executor          *)
(* ------------------------------------------------------------------ *)

module SC = Vsched.Solver_cache.Striped

let test_striped_batch_counts () =
  let c = SC.create ~shards:4 () in
  let q_sat = E.[ of_var qb >. const 3; of_var qb <. const 6 ] in
  let q_unsat = E.[ of_var qb >. const 5; of_var qb <. const 3 ] in
  (match SC.feasible_batch c ~max_nodes:4_000 [ q_sat; q_unsat; List.rev q_sat ] with
  | [ (a1, _); (a2, _); (a3, dup_cached) ] ->
    check Alcotest.bool "sat verdict" true a1;
    check Alcotest.bool "unsat verdict" false a2;
    check Alcotest.bool "duplicate agrees" true a3;
    (* the duplicate missed pre-batch but was recorded by its twin's solve
       before its own turn came: served without a round-trip *)
    check Alcotest.bool "in-batch duplicate served from cache" true dup_cached
  | _ -> Alcotest.fail "wrong batch arity");
  List.iter
    (fun (_, cached) -> check Alcotest.bool "repeat batch fully cached" true cached)
    (SC.feasible_batch c ~max_nodes:4_000 [ q_sat; q_unsat ]);
  let s = SC.stats c in
  check Alcotest.int "each logical query counts one lookup" 5 s.Cache.lookups;
  check Alcotest.bool "only distinct queries solved" true (s.Cache.misses <= 2)

let test_striped_dump_prime_roundtrip () =
  let c = SC.create ~shards:4 () in
  let q1 = E.[ of_var qb >. const 3 ] in
  let q2 = E.[ of_var qc <. const 2; of_var qa ==. const 0 ] in
  ignore (SC.feasible_batch c ~max_nodes:4_000 [ q1; q2 ]);
  let d = SC.dump c in
  (* different shard count on restore: distribution must follow the new
     geometry, not the old one *)
  let c2 = SC.create ~shards:8 () in
  SC.prime c2 d;
  let s0 = SC.stats c2 in
  List.iter
    (fun (_, cached) -> check Alcotest.bool "primed entries serve" true cached)
    (SC.feasible_batch c2 ~max_nodes:4_000 [ List.rev q2; q1 ]);
  let s1 = SC.stats c2 in
  check Alcotest.int "primed queries re-solve nothing" s0.Cache.misses s1.Cache.misses


(* ------------------------------------------------------------------ *)
(* End-to-end: guided searchers beat Bfs to the specious path, and the *)
(* cache changes nothing but the solve count                           *)
(* ------------------------------------------------------------------ *)

let mysql_analysis =
  let run (policy, solver_cache) =
    (* jobs pinned to 1: the guided-vs-bfs comparison below measures
       *completion step* ordering, which parallel workers legitimately
       scramble (a VIOLET_JOBS=4 environment would make it flaky) *)
    let opts = { Violet.Pipeline.default_options with policy; solver_cache; jobs = 1 } in
    Violet.Pipeline.analyze_exn ~opts Targets.Mysql_model.target "autocommit"
  in
  let memo = Hashtbl.create 4 in
  fun policy ~solver_cache ->
    let key = Sr.to_string policy, solver_cache in
    match Hashtbl.find_opt memo key with
    | Some a -> a
    | None ->
      let a = run (policy, solver_cache) in
      Hashtbl.add memo key a;
      a

let steps_to_first_poor (a : Violet.Pipeline.analysis) =
  let poor = a.Violet.Pipeline.diff.Vmodel.Diff_analysis.poor_state_ids in
  check Alcotest.bool "analysis finds poor states" true (poor <> []);
  match
    Stats.first_completion a.Violet.Pipeline.result.Ex.sched
      ~satisfying:(fun id -> List.mem id poor)
  with
  | Some c -> c.Stats.at_step
  | None -> Alcotest.fail "no poor state ever completed"

let test_guided_beats_bfs () =
  let bfs = steps_to_first_poor (mysql_analysis Ex.Bfs ~solver_cache:true) in
  let coverage = steps_to_first_poor (mysql_analysis Ex.Coverage_guided ~solver_cache:true) in
  let impact =
    steps_to_first_poor
      (mysql_analysis (Ex.Config_impact { related = [] }) ~solver_cache:true)
  in
  check Alcotest.bool
    (Printf.sprintf "coverage (%d) < bfs (%d)" coverage bfs)
    true (coverage < bfs);
  check Alcotest.bool
    (Printf.sprintf "config-impact (%d) < bfs (%d)" impact bfs)
    true (impact < bfs)

let test_cache_transparent_end_to_end () =
  let strip (a : Violet.Pipeline.analysis) =
    Vmodel.Impact_model.to_string
      { a.Violet.Pipeline.model with Vmodel.Impact_model.analysis_wall_s = 0. }
  in
  let on = mysql_analysis Ex.Dfs ~solver_cache:true in
  let off = mysql_analysis Ex.Dfs ~solver_cache:false in
  check Alcotest.string "identical impact model" (strip off) (strip on);
  let sched = on.Violet.Pipeline.result.Ex.sched in
  (match sched.Stats.cache with
  | None -> Alcotest.fail "cache stats missing with the cache on"
  | Some c ->
    check Alcotest.bool "nonzero hit rate" true (Cache.hit_rate c > 0.);
    check Alcotest.bool "fewer solves than queries" true
      (sched.Stats.solver_solves < sched.Stats.solver_queries));
  let sched_off = off.Violet.Pipeline.result.Ex.sched in
  check Alcotest.bool "cache off reports no stats" true (sched_off.Stats.cache = None);
  check Alcotest.int "cache off solves every query" sched_off.Stats.solver_queries
    sched_off.Stats.solver_solves;
  (* query counts are cache-independent, so virtual-time accounting is too *)
  check Alcotest.int "query count unchanged" sched_off.Stats.solver_queries
    sched.Stats.solver_queries

let tests =
  [
    tc "searcher of_string roundtrip" test_of_string_roundtrip;
    tc "all searchers explore dfs's path set" test_same_path_set_as_dfs;
    tc "completion order deterministic" test_deterministic_ordering;
    tc "telemetry consistent" test_telemetry_consistent;
    QCheck_alcotest.to_alcotest prop_cache_matches_solver;
    tc "cache hit counters" test_cache_hits_accumulate;
    tc "cache keys ignore constraint order" test_cache_key_order_insensitive;
    tc "merged shard entries serve queries" test_cache_merge_serves_shard_entries;
    tc "striped cache batches and counts once per query" test_striped_batch_counts;
    tc "striped cache dump/prime round-trip" test_striped_dump_prime_roundtrip;
    tc "guided searchers beat bfs to the specious path" test_guided_beats_bfs;
    tc "solver cache transparent end to end" test_cache_transparent_end_to_end;
  ]
