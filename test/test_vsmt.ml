(* Unit and property tests for the vsmt library: domains, expressions, the
   simplifier, intervals, the solver, and serialization. *)

module Dom = Vsmt.Dom
module E = Vsmt.Expr
module I = Vsmt.Interval
module Simplify = Vsmt.Simplify
module Solver = Vsmt.Solver

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

(* ------------------------------------------------------------------ *)
(* Generators                                                          *)
(* ------------------------------------------------------------------ *)

let dom_gen =
  QCheck2.Gen.(
    oneof
      [
        return Dom.bool;
        (int_range (-50) 50 >>= fun lo ->
         int_range 0 100 >>= fun w -> return (Dom.int_range lo (lo + w)));
        return (Dom.enum "color" [ "red"; "green"; "blue" ]);
      ])

let var_pool =
  [
    E.{ name = "a"; dom = Dom.bool; origin = Config };
    E.{ name = "b"; dom = Dom.int_range 0 10; origin = Config };
    E.{ name = "c"; dom = Dom.int_range (-20) 20; origin = Workload };
    E.{ name = "d"; dom = Dom.enum "mode" [ "x"; "y"; "z" ]; origin = Config };
  ]

let expr_gen =
  let open QCheck2.Gen in
  let leaf =
    oneof
      [ (int_range (-30) 30 >>= fun v -> return (E.const v));
        (oneofl var_pool >>= fun v -> return (E.of_var v)) ]
  in
  let binop =
    oneofl
      E.[ Add; Sub; Mul; Div; Mod; Eq; Ne; Lt; Le; Gt; Ge; And; Or ]
  in
  sized @@ fix (fun self n ->
      if n <= 1 then leaf
      else
        oneof
          [
            leaf;
            (binop >>= fun op ->
             self (n / 2) >>= fun a ->
             self (n / 2) >>= fun b -> return (E.binop op a b));
            (self (n - 1) >>= fun a -> return (E.not_ a));
            (self (n - 1) >>= fun a -> return (E.neg a));
            (self (n / 3) >>= fun c ->
             self (n / 3) >>= fun a ->
             self (n / 3) >>= fun b -> return (E.ite c a b));
          ])

let env_gen =
  QCheck2.Gen.(
    List.fold_left
      (fun acc (v : E.var) ->
        acc >>= fun env ->
        int_range (Dom.lo v.E.dom) (Dom.hi v.E.dom) >>= fun x ->
        return ((v.E.name, x) :: env))
      (return []) var_pool)

let lookup env (v : E.var) =
  match List.assoc_opt v.E.name env with Some x -> x | None -> Dom.lo v.E.dom

(* ------------------------------------------------------------------ *)
(* Dom                                                                 *)
(* ------------------------------------------------------------------ *)

let test_dom_bounds () =
  check Alcotest.int "bool lo" 0 (Dom.lo Dom.bool);
  check Alcotest.int "bool hi" 1 (Dom.hi Dom.bool);
  check Alcotest.int "bool size" 2 (Dom.size Dom.bool);
  let d = Dom.int_range (-3) 7 in
  check Alcotest.int "range size" 11 (Dom.size d);
  check Alcotest.bool "mem lo" true (Dom.mem d (-3));
  check Alcotest.bool "mem hi" true (Dom.mem d 7);
  check Alcotest.bool "not mem" false (Dom.mem d 8);
  let e = Dom.enum "t" [ "p"; "q" ] in
  check Alcotest.int "enum size" 2 (Dom.size e)

let test_dom_invalid () =
  Alcotest.check_raises "empty range" (Invalid_argument "Dom.int_range: empty range")
    (fun () -> ignore (Dom.int_range 3 2));
  Alcotest.check_raises "empty enum" (Invalid_argument "Dom.enum: no members") (fun () ->
      ignore (Dom.enum "t" []))

let test_dom_strings () =
  check Alcotest.string "bool on" "ON" (Dom.value_to_string Dom.bool 1);
  check Alcotest.string "bool off" "OFF" (Dom.value_to_string Dom.bool 0);
  check (Alcotest.option Alcotest.int) "parse true" (Some 1)
    (Dom.value_of_string Dom.bool "true");
  check (Alcotest.option Alcotest.int) "parse off" (Some 0)
    (Dom.value_of_string Dom.bool "OFF");
  let e = Dom.enum "t" [ "ROW"; "STATEMENT" ] in
  check Alcotest.string "enum name" "STATEMENT" (Dom.value_to_string e 1);
  check (Alcotest.option Alcotest.int) "enum parse ci" (Some 0)
    (Dom.value_of_string e "row");
  check (Alcotest.option Alcotest.int) "enum by index" (Some 1) (Dom.value_of_string e "1");
  check (Alcotest.option Alcotest.int) "int reject oob" None
    (Dom.value_of_string (Dom.int_range 0 5) "9")

let prop_dom_roundtrip =
  QCheck2.Test.make ~name:"dom value string roundtrip" ~count:200
    QCheck2.Gen.(dom_gen >>= fun d -> int_range (Dom.lo d) (Dom.hi d) >>= fun v -> return (d, v))
    (fun (d, v) -> Dom.value_of_string d (Dom.value_to_string d v) = Some v)

(* ------------------------------------------------------------------ *)
(* Expr                                                                *)
(* ------------------------------------------------------------------ *)

let test_eval_basics () =
  let env _ = 0 in
  check Alcotest.int "const" 42 (E.eval env (E.const 42));
  check Alcotest.int "div0" 0 (E.eval env E.(const 5 /. const 0));
  check Alcotest.int "mod0" 0 (E.eval env E.(const 5 %. const 0));
  check Alcotest.int "cmp true" 1 (E.eval env E.(const 3 <. const 4));
  check Alcotest.int "cmp false" 0 (E.eval env E.(const 4 <. const 4));
  check Alcotest.int "and truthy" 1 (E.eval env E.(const 7 &&. const (-2)));
  check Alcotest.int "not nonzero" 0 (E.eval env (E.not_ (E.const 3)));
  check Alcotest.int "ite" 9 (E.eval env (E.ite (E.const 1) (E.const 9) (E.const 8)))

let test_vars_dedup () =
  let v = List.hd var_pool in
  let e = E.(of_var v +. (of_var v *. of_var v)) in
  check Alcotest.int "single var" 1 (List.length (E.vars e))

let test_subst () =
  let v = List.hd var_pool in
  let e = E.(of_var v +. const 1) in
  let e' = E.subst (fun w -> if w.E.name = "a" then Some (E.const 4) else None) e in
  check Alcotest.int "substituted" 5 (E.eval (fun _ -> 0) e')

let test_pp_friendly () =
  let ac = E.var "autocommit" Dom.bool in
  check Alcotest.string "friendly" "autocommit==ON" (Fmt.str "%a" E.pp_friendly E.(ac ==. const 1));
  check Alcotest.string "plain" "autocommit == 1" (E.to_string E.(ac ==. const 1))

let prop_short_circuit =
  QCheck2.Test.make ~name:"and/or results are 0/1" ~count:300
    QCheck2.Gen.(pair expr_gen env_gen)
    (fun (e, env) ->
      let v = E.eval (lookup env) E.(e ||. e) in
      let w = E.eval (lookup env) E.(e &&. e) in
      (v = 0 || v = 1) && (w = 0 || w = 1))

(* ------------------------------------------------------------------ *)
(* Simplify                                                            *)
(* ------------------------------------------------------------------ *)

let prop_simplify_sound =
  QCheck2.Test.make ~name:"simplify preserves evaluation" ~count:1000
    QCheck2.Gen.(pair expr_gen env_gen)
    (fun (e, env) ->
      E.eval (lookup env) e = E.eval (lookup env) (Simplify.simplify e))

let prop_simplify_idempotent =
  QCheck2.Test.make ~name:"simplify is idempotent" ~count:500 expr_gen (fun e ->
      let s = Simplify.simplify e in
      E.equal s (Simplify.simplify s))

let test_simplify_rules () =
  let b = List.nth var_pool 1 in
  let x = E.of_var b in
  let s e = Simplify.simplify e in
  check Alcotest.bool "x+0" true (E.equal x (s E.(x +. const 0)));
  check Alcotest.bool "x*1" true (E.equal x (s E.(x *. const 1)));
  check Alcotest.bool "x*0" true (E.equal (E.const 0) (s E.(x *. const 0)));
  check Alcotest.bool "x-x" true (E.equal (E.const 0) (s E.(x -. x)));
  check Alcotest.bool "x==x" true (E.equal (E.const 1) (s E.(x ==. x)));
  check Alcotest.bool "domain fold" true
    (* b in [0..10] so b < 11 is always true *)
    (E.equal (E.const 1) (s E.(x <. const 11)));
  check Alcotest.bool "domain fold false" true (E.equal (E.const 0) (s E.(x >. const 10)));
  check Alcotest.bool "double not of cmp" true
    (E.equal (s E.(x <. const 5)) (s (E.not_ (E.not_ E.(x <. const 5)))))

let test_simplify_conj () =
  let b = List.nth var_pool 1 in
  let x = E.of_var b in
  let cs = Simplify.simplify_conj E.[ x >. const 2; const 1; x >. const 2 ] in
  check Alcotest.int "dedup + drop true" 1 (List.length cs);
  let cs = Simplify.simplify_conj E.[ x >. const 2; const 0 ] in
  check Alcotest.bool "false wins" true (cs = [ E.fls ]);
  let cs = Simplify.simplify_conj E.[ (x >. const 2) &&. (x <. const 9) ] in
  check Alcotest.int "flatten and" 2 (List.length cs)

(* ------------------------------------------------------------------ *)
(* Interval                                                            *)
(* ------------------------------------------------------------------ *)

let test_interval_basics () =
  let a = I.make 1 5 and b = I.make 3 9 in
  check Alcotest.bool "inter" true (I.inter a b = Some (I.make 3 5));
  check Alcotest.bool "disjoint" true (I.inter (I.make 0 1) (I.make 3 4) = None);
  check Alcotest.bool "hull" true (I.equal (I.hull a b) (I.make 1 9));
  check Alcotest.bool "add" true (I.equal (I.add a b) (I.make 4 14));
  check Alcotest.bool "sub" true (I.equal (I.sub a b) (I.make (-8) 2));
  check Alcotest.bool "neg" true (I.equal (I.neg a) (I.make (-5) (-1)));
  check Alcotest.bool "mul signs" true
    (I.equal (I.mul (I.make (-2) 3) (I.make (-4) 5)) (I.make (-12) 15))

let test_interval_eq_ne () =
  check Alcotest.bool "eq points" true (I.equal (I.eq_result (I.point 3) (I.point 3)) (I.point 1));
  check Alcotest.bool "eq disjoint" true
    (I.equal (I.eq_result (I.make 0 2) (I.make 5 9)) (I.point 0));
  check Alcotest.bool "eq overlap unknown" true
    (I.equal (I.eq_result (I.make 0 2) (I.make 1 1)) (I.make 0 1));
  check Alcotest.bool "ne points" true (I.equal (I.ne_result (I.point 3) (I.point 4)) (I.point 1))

let prop_interval_sound =
  (* interval of a op b contains x op y for x in a, y in b *)
  QCheck2.Test.make ~name:"interval arithmetic is sound" ~count:500
    QCheck2.Gen.(
      let bound = int_range (-40) 40 in
      tup4 bound (int_range 0 20) bound (int_range 0 20) >>= fun (alo, aw, blo, bw) ->
      int_range alo (alo + aw) >>= fun x ->
      int_range blo (blo + bw) >>= fun y ->
      oneofl [ `Add; `Sub; `Mul; `Div; `Rem ] >>= fun op ->
      return (alo, alo + aw, blo, blo + bw, x, y, op))
    (fun (alo, ahi, blo, bhi, x, y, op) ->
      let a = I.make alo ahi and b = I.make blo bhi in
      let iv, v =
        match op with
        | `Add -> I.add a b, x + y
        | `Sub -> I.sub a b, x - y
        | `Mul -> I.mul a b, x * y
        | `Div -> I.div a b, if y = 0 then 0 else x / y
        | `Rem -> I.rem a b, if y = 0 then 0 else x mod y
      in
      I.mem v iv)

(* ------------------------------------------------------------------ *)
(* Solver                                                              *)
(* ------------------------------------------------------------------ *)

let is_sat = function Solver.Sat _ -> true | Solver.Unsat | Solver.Unknown -> false

let test_solver_simple () =
  let b = List.nth var_pool 1 in
  let x = E.of_var b in
  check Alcotest.bool "range sat" true (is_sat (Solver.check E.[ x >. const 3; x <. const 6 ]));
  check Alcotest.bool "range unsat" false
    (is_sat (Solver.check E.[ x >. const 6; x <. const 3 ]));
  check Alcotest.bool "domain unsat" false (is_sat (Solver.check E.[ x >. const 10 ]));
  check Alcotest.bool "eq chain" true
    (is_sat (Solver.check E.[ x ==. const 4; x +. const 1 ==. const 5 ]))

let test_solver_multi_var () =
  let a = E.of_var (List.hd var_pool) and b = E.of_var (List.nth var_pool 1) in
  check Alcotest.bool "linked sat" true
    (is_sat (Solver.check E.[ a ==. const 1; b >. const 4; (a ==. const 0) ||. (b <. const 8) ]));
  check Alcotest.bool "linked unsat" false
    (is_sat (Solver.check E.[ a ==. const 1; (a ==. const 0) ||. (b >. const 10) ]))

let test_solver_large_domain () =
  let buf = E.var "buf" (Dom.int_range 1024 (64 * 1024 * 1024)) in
  match Solver.check E.[ buf >. const 4096; buf *. const 2 <. const 65536 ] with
  | Solver.Sat m -> begin
    match Solver.model_value m "buf" with
    | Some v -> Alcotest.(check bool) "model in range" true (v > 4096 && v < 32768)
    | None -> Alcotest.fail "no value for buf"
  end
  | Solver.Unsat | Solver.Unknown -> Alcotest.fail "expected sat"

let test_solver_ne_shaving () =
  let a = E.var "flag" Dom.bool in
  check Alcotest.bool "bool pinned" true
    (is_sat (Solver.check E.[ a <>. const 0; a <>. const 2 ]));
  check Alcotest.bool "bool exhausted" false
    (is_sat (Solver.check E.[ a <>. const 0; a <>. const 1 ]))

let prop_solver_model_satisfies =
  QCheck2.Test.make ~name:"Sat models satisfy the constraints" ~count:400
    QCheck2.Gen.(list_size (int_range 1 4) expr_gen)
    (fun cs ->
      match Solver.check cs with
      | Solver.Sat m ->
        let vars = List.concat_map E.vars cs in
        let m = Solver.complete ~vars m in
        List.for_all
          (fun c -> match Solver.eval_in m c with Some v -> v <> 0 | None -> false)
          cs
      | Solver.Unsat | Solver.Unknown -> true)

let prop_solver_complete_for_satisfiable =
  (* generate an assignment first, then constraints it satisfies: the solver
     must never answer Unsat *)
  QCheck2.Test.make ~name:"solver finds planted solutions" ~count:400
    QCheck2.Gen.(
      env_gen >>= fun env ->
      list_size (int_range 1 4) expr_gen >>= fun es -> return (env, es))
    (fun (env, es) ->
      let cs =
        List.map
          (fun e ->
            if E.eval (lookup env) e <> 0 then e else E.not_ e)
          es
      in
      match Solver.check cs with
      | Solver.Sat _ | Solver.Unknown -> true
      | Solver.Unsat -> false)

let test_complete_defaults () =
  let vars = [ List.hd var_pool; List.nth var_pool 1 ] in
  let m = Solver.complete ~vars [ "a", 1 ] in
  check (Alcotest.option Alcotest.int) "kept" (Some 1) (Solver.model_value m "a");
  check (Alcotest.option Alcotest.int) "defaulted" (Some 0) (Solver.model_value m "b")

(* ------------------------------------------------------------------ *)
(* Sexp + Serial                                                       *)
(* ------------------------------------------------------------------ *)

let test_sexp_roundtrip () =
  let module S = Vsmt.Sexp in
  let s = S.list [ S.atom "hello world"; S.int 42; S.list [ S.atom "x\"y" ] ] in
  match S.of_string (S.to_string s) with
  | Ok s' -> check Alcotest.string "roundtrip" (S.to_string s) (S.to_string s')
  | Error e -> Alcotest.fail e

let test_sexp_errors () =
  let module S = Vsmt.Sexp in
  check Alcotest.bool "unterminated" true (Result.is_error (S.of_string "(a b"));
  check Alcotest.bool "trailing" true (Result.is_error (S.of_string "(a) b"));
  check Alcotest.bool "comments ok" true (Result.is_ok (S.of_string "; hi\n(a)"))

let prop_serial_roundtrip =
  QCheck2.Test.make ~name:"expr serialization roundtrips" ~count:400 expr_gen (fun e ->
      match Vsmt.Serial.expr_of_sexp (Vsmt.Serial.expr_to_sexp e) with
      | Ok e' -> E.equal e e'
      | Error _ -> false)

let prop_serial_via_text =
  QCheck2.Test.make ~name:"expr serialization survives text" ~count:200 expr_gen (fun e ->
      let text = Vsmt.Sexp.to_string (Vsmt.Serial.expr_to_sexp e) in
      match Vsmt.Sexp.of_string text with
      | Ok s -> ( match Vsmt.Serial.expr_of_sexp s with Ok e' -> E.equal e e' | Error _ -> false)
      | Error _ -> false)

(* ------------------------------------------------------------------ *)
(* Hash-consing                                                        *)
(* ------------------------------------------------------------------ *)

let hvar = List.nth var_pool 1 (* "b", int 0..10 *)

let test_hashcons_physical_equality () =
  let e1 = E.(binop Add (of_var hvar) (const 3)) in
  let e2 = E.(binop Add (of_var hvar) (const 3)) in
  check Alcotest.bool "separately built equal exprs share one node" true (e1 == e2);
  check Alcotest.int "and therefore one id" (E.id e1) (E.id e2);
  let e3 = E.(binop Add (of_var hvar) (const 4)) in
  check Alcotest.bool "distinct exprs get distinct ids" true (E.id e1 <> E.id e3);
  check Alcotest.bool "structural compare still orders them" true
    (E.compare e1 e3 <> 0)

let rec rebuild e =
  match E.view e with
  | E.Const v -> E.const v
  | E.Var v -> E.of_var v
  | E.Not a -> E.not_ (rebuild a)
  | E.Neg a -> E.neg (rebuild a)
  | E.Binop (op, a, b) -> E.binop op (rebuild a) (rebuild b)
  | E.Ite (c, a, b) -> E.ite (rebuild c) (rebuild a) (rebuild b)

let prop_hashcons_canonical =
  QCheck2.Test.make ~name:"rebuilding any expr via view yields the same node"
    ~count:300 expr_gen (fun e -> rebuild e == e)

let test_hashcons_rehash () =
  (* Marshal duplicates the structure, bypassing the intern table; [rehash]
     must bring the copy back to the canonical live node (the snapshot-load
     path in the executor depends on this) *)
  let e = E.(ite (binop Lt (of_var hvar) (const 7)) (const 1) (neg (of_var hvar))) in
  let copied : E.t = Marshal.from_string (Marshal.to_string e []) 0 in
  check Alcotest.bool "marshalling breaks sharing" true (copied != e);
  check Alcotest.bool "rehash re-interns to the live node" true (E.rehash copied == e)

let qt = QCheck_alcotest.to_alcotest

let tests =
  [
    tc "dom bounds" test_dom_bounds;
    tc "dom invalid" test_dom_invalid;
    tc "dom strings" test_dom_strings;
    qt prop_dom_roundtrip;
    tc "eval basics" test_eval_basics;
    tc "vars dedup" test_vars_dedup;
    tc "subst" test_subst;
    tc "pp friendly" test_pp_friendly;
    qt prop_short_circuit;
    qt prop_simplify_sound;
    qt prop_simplify_idempotent;
    tc "simplify rules" test_simplify_rules;
    tc "simplify conj" test_simplify_conj;
    tc "interval basics" test_interval_basics;
    tc "interval eq/ne" test_interval_eq_ne;
    qt prop_interval_sound;
    tc "solver simple" test_solver_simple;
    tc "solver multi var" test_solver_multi_var;
    tc "solver large domain" test_solver_large_domain;
    tc "solver ne shaving" test_solver_ne_shaving;
    qt prop_solver_model_satisfies;
    qt prop_solver_complete_for_satisfiable;
    tc "complete defaults" test_complete_defaults;
    tc "sexp roundtrip" test_sexp_roundtrip;
    tc "sexp errors" test_sexp_errors;
    qt prop_serial_roundtrip;
    qt prop_serial_via_text;
    tc "hashcons physical equality" test_hashcons_physical_equality;
    qt prop_hashcons_canonical;
    tc "hashcons rehash after marshal" test_hashcons_rehash;
  ]
