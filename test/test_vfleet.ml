(* Tests for the fleet layer: hash-ring determinism, topology state-file
   atomicity, client retry/timeout behavior, connection write-failure
   accounting, seeded chaos planning — and, behind a fork (so this suite
   must run before anything spawns a domain), a live supervised fleet:
   end-to-end byte identity through the router, kill -9 with requests
   genuinely in flight, crash-loop breaker tripping, and two-phase reload
   with a corrupt-stage abort. *)

module P = Vserve.Protocol
module Client = Vserve.Client
module Server = Vserve.Server
module Conn = Vserve.Conn
module Reg = Vserve.Registry
module Wire = Vserve.Wire
module Checker = Vchecker.Checker
module M = Vmodel.Impact_model
module Topology = Vfleet.Topology
module Ring = Vfleet.Hash_ring
module Supervisor = Vfleet.Supervisor
module Router = Vfleet.Router
module Chaos = Vfleet.Chaos

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f
let or_fail = function Ok v -> v | Error e -> Alcotest.fail e

let mk_tmpdir () =
  let path = Filename.temp_file "vfleet" "" in
  Sys.remove path;
  Unix.mkdir path 0o700;
  path

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Unix.rmdir path
  end
  else Sys.remove path

(* jobs = 1 so building the fixture never spawns a domain: the fleet tests
   fork, and fork is unsound once any domain exists *)
let fixture_model =
  let m =
    lazy
      (let opts = { Violet.Pipeline.default_options with Violet.Pipeline.jobs = 1 } in
       (Violet.Pipeline.analyze_exn ~opts Fixtures.target "autocommit").Violet.Pipeline.model)
  in
  fun () -> Lazy.force m

let export_fixture ?(tweak = fun m -> m) dir key =
  let path = Reg.model_file ~dir ~key in
  or_fail (Violet.Pipeline.export_model (tweak (fixture_model ())) path);
  path

(* ------------------------------------------------------------------ *)
(* Hash ring                                                           *)
(* ------------------------------------------------------------------ *)

let test_ring_deterministic () =
  let a = Ring.make ~shards:4 () and b = Ring.make ~shards:4 () in
  let keys = List.init 50 (fun i -> Printf.sprintf "model-%d" i) in
  List.iter
    (fun k ->
      check Alcotest.int ("owner of " ^ k) (Ring.owner a k) (Ring.owner b k);
      check (Alcotest.list Alcotest.int) ("preference of " ^ k) (Ring.preference a k)
        (Ring.preference b k))
    keys

let test_ring_preference_complete () =
  let ring = Ring.make ~shards:5 () in
  List.iter
    (fun k ->
      let pref = Ring.preference ring k in
      check Alcotest.int "covers every shard" 5 (List.length pref);
      check
        (Alcotest.list Alcotest.int)
        "each shard exactly once" [ 0; 1; 2; 3; 4 ]
        (List.sort compare pref);
      check Alcotest.int "owner heads the list" (Ring.owner ring k) (List.hd pref))
    (List.init 50 (fun i -> Printf.sprintf "key-%d" i))

let test_ring_distribution () =
  let shards = 4 in
  let ring = Ring.make ~shards () in
  let counts = Array.make shards 0 in
  for i = 0 to 199 do
    let o = Ring.owner ring (Printf.sprintf "system-%d--param" i) in
    counts.(o) <- counts.(o) + 1
  done;
  Array.iteri
    (fun i n ->
      if n = 0 then Alcotest.fail (Printf.sprintf "shard %d owns no keys out of 200" i))
    counts

(* ------------------------------------------------------------------ *)
(* Topology state file                                                 *)
(* ------------------------------------------------------------------ *)

let test_topology_state_file () =
  let run_dir = mk_tmpdir () in
  Fun.protect ~finally:(fun () -> rm_rf run_dir) @@ fun () ->
  let t = Topology.make ~run_dir ~shards:3 in
  check Alcotest.bool "no state before first publish" true (Topology.read_state t = None);
  Topology.write_state t "{\"shards\":[]}";
  check (Alcotest.option Alcotest.string) "state round-trips" (Some "{\"shards\":[]}")
    (Topology.read_state t);
  Topology.write_state t "{\"shards\":[{\"id\":0}]}";
  check (Alcotest.option Alcotest.string) "replacement is complete"
    (Some "{\"shards\":[{\"id\":0}]}")
    (Topology.read_state t);
  (* no temp debris left behind by the atomic replace *)
  let files = Sys.readdir run_dir in
  check Alcotest.int "only the state file remains" 1 (Array.length files);
  match Topology.worker_addr t 2 with
  | `Unix p -> check Alcotest.bool "shard socket in run_dir" true (Filename.dirname p = run_dir)
  | `Tcp _ -> Alcotest.fail "expected a unix socket"

(* ------------------------------------------------------------------ *)
(* Client: retry deadline and receive timeout                          *)
(* ------------------------------------------------------------------ *)

let test_connect_retry_gives_up () =
  let t0 = Unix.gettimeofday () in
  match
    Client.connect_retry ~deadline_s:0.3 ~base_delay_s:0.02
      (`Unix "/nonexistent/vfleet-test.sock")
  with
  | Ok _ -> Alcotest.fail "connect to a nonexistent socket must fail"
  | Error msg ->
    let elapsed = Unix.gettimeofday () -. t0 in
    check Alcotest.bool "respected the deadline" true (elapsed < 5.0);
    (* the message must carry the attempt count and the last cause *)
    let has needle =
      let rec go i =
        i + String.length needle <= String.length msg
        && (String.sub msg i (String.length needle) = needle || go (i + 1))
      in
      go 0
    in
    check Alcotest.bool "reports the attempts" true (has "gave up after");
    check Alcotest.bool "reports the cause" true (has "last error")

let test_receive_timeout () =
  let dir = mk_tmpdir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let path = Filename.concat dir "silent.sock" in
  (* a listener that accepts (the backlog does) but never answers *)
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect ~finally:(fun () -> Unix.close listen_fd) @@ fun () ->
  Unix.bind listen_fd (Unix.ADDR_UNIX path);
  Unix.listen listen_fd 4;
  let c = or_fail (Client.connect (`Unix path)) in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  let t0 = Unix.gettimeofday () in
  match Client.call ~timeout_s:0.2 c P.Health with
  | Ok _ -> Alcotest.fail "a silent server cannot produce a response"
  | Error _ ->
    check Alcotest.bool "timed out promptly" true (Unix.gettimeofday () -. t0 < 3.0)

let test_conn_write_failed_counter () =
  if Sys.os_type = "Unix" then Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.close b;
  let failed = ref 0 in
  let conn = Conn.make ~on_write_failed:(fun () -> incr failed) a in
  (* writing into a closed peer: EPIPE, possibly only once buffers fill *)
  let line = String.make 65536 'x' in
  let attempts = ref 0 in
  while (not (Conn.closed conn)) && !attempts < 100 do
    incr attempts;
    Conn.write_line conn line
  done;
  check Alcotest.bool "connection closed on write failure" true (Conn.closed conn);
  check Alcotest.int "failure counted exactly once" 1 !failed;
  (* writes to a closed connection are no-ops, not double-counted *)
  Conn.write_line conn line;
  check Alcotest.int "no double count" 1 !failed

(* ------------------------------------------------------------------ *)
(* Chaos planning                                                      *)
(* ------------------------------------------------------------------ *)

let mk_draws seed =
  let st = Random.State.make [| seed |] in
  {
    Chaos.draw_int = (fun n -> Random.State.int st n);
    draw_float = (fun () -> Random.State.float st 1.0);
  }

let test_chaos_plan_deterministic () =
  let plan seed = Chaos.plan ~draws:(mk_draws seed) ~shards:3 ~keys:[ "k" ] ~events:20 in
  check
    (Alcotest.list Alcotest.string)
    "same seed, same plan"
    (List.map Chaos.action_to_string (plan 7))
    (List.map Chaos.action_to_string (plan 7));
  List.iter
    (fun a ->
      match a with
      | Chaos.Kill i -> check Alcotest.bool "kill in range" true (i >= 0 && i < 3)
      | Chaos.Stall { shard; for_s } ->
        check Alcotest.bool "stall in range" true (shard >= 0 && shard < 3);
        check Alcotest.bool "stall bounded" true (for_s >= 0.1 && for_s <= 0.6)
      | Chaos.Corrupt_reload { key } -> check Alcotest.string "corrupt key" "k" key)
    (plan 7);
  (* without reloadable keys, the corruption slots become kills *)
  List.iter
    (function
      | Chaos.Corrupt_reload _ -> Alcotest.fail "no corruption without keys"
      | Chaos.Kill _ | Chaos.Stall _ -> ())
    (Chaos.plan ~draws:(mk_draws 7) ~shards:3 ~keys:[] ~events:20)

(* ------------------------------------------------------------------ *)
(* Live fleet (fork-based: everything below skips if a domain exists)  *)
(* ------------------------------------------------------------------ *)

let skip_if_domains () =
  if Vpar.Pool.spawned_domains () then
    Alcotest.skip ()

let start_fleet ?spawn_worker ?(crashloop_limit = 5) ~run_dir ~models_dir ~shards () =
  let topology = Topology.make ~run_dir ~shards in
  match Unix.fork () with
  | 0 ->
    let base = Supervisor.default_options ~topology ~models_dir in
    let opts =
      {
        base with
        Supervisor.worker_opts =
          (fun i ->
            {
              (base.Supervisor.worker_opts i) with
              Server.resolve_registry = (fun _ -> Some Fixtures.registry);
              jobs = 1;
            });
        router_opts =
          { base.Supervisor.router_opts with Router.attempt_timeout_s = 1.0 };
        probe_every_s = 0.2;
        backoff_base_s = 0.02;
        crashloop_limit;
        crashloop_cooldown_s = 60.0;
        spawn_worker;
      }
    in
    (match Supervisor.run opts with Ok () -> () | Error _ -> ());
    Unix._exit 0
  | pid -> (topology, pid)

let stop_fleet pid =
  (try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ());
  try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ()

let shard_field topology i name =
  match Topology.read_state topology with
  | None -> None
  | Some contents -> begin
    match Wire.of_string contents with
    | Error _ -> None
    | Ok v ->
      Option.bind (Wire.member "shards" v) Wire.to_list
      |> Option.map
           (List.filter_map (fun it ->
                match Option.bind (Wire.member "id" it) Wire.to_int with
                | Some id when id = i -> Wire.member name it
                | _ -> None))
      |> Option.map (function f :: _ -> Some f | [] -> None)
      |> Option.join
  end

let await_state topology i ~want ~deadline_s =
  let deadline = Unix.gettimeofday () +. deadline_s in
  let rec wait () =
    match Option.bind (shard_field topology i "state") Wire.to_str with
    | Some s when s = want -> ()
    | got ->
      if Unix.gettimeofday () > deadline then
        Alcotest.fail
          (Printf.sprintf "shard %d never reached state %s (last: %s)" i want
             (Option.value ~default:"<none>" got))
      else begin
        Unix.sleepf 0.05;
        wait ()
      end
  in
  wait ()

let await_worker topology i =
  let c = or_fail (Client.connect_retry ~deadline_s:20.0 (Topology.worker_addr topology i)) in
  let deadline = Unix.gettimeofday () +. 20.0 in
  let rec wait () =
    match Client.call ~timeout_s:5.0 c P.Health with
    | Ok (P.Health_info { models = _ :: _; _ }) -> ()
    | _ ->
      if Unix.gettimeofday () > deadline then Alcotest.fail "worker never loaded models"
      else begin
        Unix.sleepf 0.05;
        wait ()
      end
  in
  wait ();
  Client.close c

let expect_report = function
  | P.Report o -> o
  | P.Error_resp { code; message } ->
    Alcotest.fail
      (Printf.sprintf "fleet error %s: %s" (P.error_code_to_string code) message)
  | _ -> Alcotest.fail "expected a report"

let findings_bytes fs = Wire.to_string (P.findings_to_wire fs)

(* The headline robustness test: byte identity through the router, then a
   kill -9 with requests genuinely in flight (the victim is SIGSTOPped
   first, so its requests cannot have been answered), then two-phase
   reload — happy path and corrupt-stage abort — against the same fleet. *)
let test_fleet_end_to_end () =
  skip_if_domains ();
  let dir = mk_tmpdir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let models_dir = Filename.concat dir "models" in
  Unix.mkdir models_dir 0o700;
  let shards = 2 in
  (* a key each shard owns, found on the same deterministic ring the
     router builds *)
  let ring = Ring.make ~shards () in
  let key_owned_by target_shard =
    let rec go i =
      let k = Printf.sprintf "mini-%d" i in
      if Ring.owner ring k = target_shard then k else go (i + 1)
    in
    go 0
  in
  let key0 = key_owned_by 0 and key1 = key_owned_by 1 in
  let model_path = export_fixture models_dir key0 in
  let _ = export_fixture models_dir key1 in
  let run_dir = Filename.concat dir "run" in
  let topology, sup_pid = start_fleet ~run_dir ~models_dir ~shards () in
  Fun.protect ~finally:(fun () -> stop_fleet sup_pid) @@ fun () ->
  await_worker topology 0;
  await_worker topology 1;
  let c = or_fail (Client.connect_retry ~deadline_s:20.0 (Topology.router_addr topology)) in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  (* byte identity: routed answer == in-process checker on the same file *)
  let ref_model = or_fail (Violet.Pipeline.import_model model_path) in
  let local =
    or_fail
      (Checker.check_current ~model:ref_model ~registry:Fixtures.registry
         ~file:(Vchecker.Config_file.parse "") ())
  in
  let served =
    expect_report (or_fail (Client.call ~timeout_s:20.0 c (P.Check_current { key = key0; config = "" })))
  in
  check Alcotest.string "routed findings byte-identical"
    (findings_bytes local.Checker.findings)
    (findings_bytes served.P.findings);
  check Alcotest.bool "findings non-empty" true (served.P.findings <> []);
  check Alcotest.bool "not degraded" true (not served.P.degraded);
  (* kill -9 with requests in flight: stall the victim so its requests are
     pinned mid-flight, post, kill, and every request must still be
     answered (failover re-dispatches to the sibling replica) *)
  let victim_pid =
    match Option.bind (shard_field topology 0 "pid") Wire.to_int with
    | Some p when p > 0 -> p
    | _ -> Alcotest.fail "no pid for shard 0 in the state file"
  in
  Unix.kill victim_pid Sys.sigstop;
  let extra =
    List.init 3 (fun _ -> or_fail (Client.connect_retry (Topology.router_addr topology)))
  in
  Fun.protect ~finally:(fun () -> List.iter Client.close extra) @@ fun () ->
  let posted =
    List.map
      (fun conn -> (conn, or_fail (Client.post conn (P.Check_current { key = key0; config = "" }))))
      extra
  in
  (* let the router dispatch onto the stalled worker before the kill, so
     the requests are pinned in flight on the victim when it dies *)
  Unix.sleepf 0.3;
  Unix.kill victim_pid Sys.sigkill;
  List.iter
    (fun (conn, id) ->
      let resp = expect_report (or_fail (Client.await ~timeout_s:20.0 conn id)) in
      check Alcotest.bool "in-flight request answered with real findings" true
        (resp.P.findings <> []))
    posted;
  (* the supervisor restarts the victim; wait for it to come back *)
  await_state topology 0 ~want:"up" ~deadline_s:20.0;
  await_worker topology 0;
  (* fleet stats: the failovers and the restart are visible through the
     router's aggregation *)
  (match or_fail (Client.call ~timeout_s:10.0 c P.Stats) with
  | P.Stats_info w ->
    let top name = Option.value ~default:0 (Option.bind (Wire.member name w) Wire.to_int) in
    check Alcotest.bool "failovers counted" true (top "failovers" >= 1);
    let restarts =
      match Option.bind (Wire.member "shards" w) Wire.to_list with
      | None -> 0
      | Some items ->
        List.fold_left
          (fun acc it ->
            acc + Option.value ~default:0 (Option.bind (Wire.member "restarts" it) Wire.to_int))
          0 items
    in
    check Alcotest.bool "restart counted" true (restarts >= 1)
  | _ -> Alcotest.fail "expected fleet stats");
  (* two-phase reload, happy path: stage everywhere, commit, generation 2 *)
  let _ = export_fixture ~tweak:(fun m -> { m with M.threshold = 0.9 }) models_dir key0 in
  (match or_fail (Client.call ~timeout_s:20.0 c P.Reload_stage) with
  | P.Reload_info { phase = "stage"; ok = true; _ } -> ()
  | P.Reload_info { entries; _ } ->
    Alcotest.fail
      ("stage failed: "
      ^ String.concat "; " (List.map (fun (k, v) -> k ^ "=" ^ v) entries))
  | _ -> Alcotest.fail "expected stage info");
  (match or_fail (Client.call ~timeout_s:20.0 c P.Reload_commit) with
  | P.Reload_info { phase = "commit"; ok = true; _ } -> ()
  | P.Reload_info { entries; _ } ->
    Alcotest.fail
      ("commit failed: "
      ^ String.concat "; " (List.map (fun (k, v) -> k ^ "=" ^ v) entries))
  | _ -> Alcotest.fail "expected commit info");
  let served =
    expect_report (or_fail (Client.call ~timeout_s:20.0 c (P.Check_current { key = key0; config = "" })))
  in
  check Alcotest.int "reloaded generation serves" 2 served.P.generation;
  (* corrupt stage: the fleet refuses the round and keeps generation 2 *)
  let good = In_channel.with_open_bin model_path In_channel.input_all in
  Out_channel.with_open_bin model_path (fun oc ->
      Out_channel.output_string oc (String.sub good 0 (String.length good / 2)));
  (match or_fail (Client.call ~timeout_s:20.0 c P.Reload_stage) with
  | P.Reload_info { phase = "stage"; ok = false; _ } -> ()
  | _ -> Alcotest.fail "corrupt stage must be refused");
  (match or_fail (Client.call ~timeout_s:20.0 c P.Reload_commit) with
  | P.Reload_info { phase = "commit"; ok = false; _ } -> ()
  | _ -> Alcotest.fail "commit after failed stage must be refused");
  Out_channel.with_open_bin model_path (fun oc -> Out_channel.output_string oc good);
  let served =
    expect_report (or_fail (Client.call ~timeout_s:20.0 c (P.Check_current { key = key0; config = "" })))
  in
  check Alcotest.int "generation 2 survives the corrupt round" 2 served.P.generation

(* A worker that dies instantly, over and over: the supervisor must stop
   burning restarts and trip the shard's crash-loop breaker. *)
let test_crash_loop_trips () =
  skip_if_domains ();
  let dir = mk_tmpdir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let models_dir = Filename.concat dir "models" in
  Unix.mkdir models_dir 0o700;
  let _ = export_fixture models_dir "mini" in
  let run_dir = Filename.concat dir "run" in
  let topology, sup_pid =
    start_fleet
      ~spawn_worker:(fun _ -> Unix._exit 3)
      ~crashloop_limit:3 ~run_dir ~models_dir ~shards:1 ()
  in
  Fun.protect ~finally:(fun () -> stop_fleet sup_pid) @@ fun () ->
  await_state topology 0 ~want:"tripped" ~deadline_s:20.0;
  (match Option.bind (shard_field topology 0 "restarts") Wire.to_int with
  | Some n when n >= 3 -> ()
  | n ->
    Alcotest.fail
      (Printf.sprintf "expected >= 3 restarts before the trip, saw %s"
         (match n with Some n -> string_of_int n | None -> "<none>")));
  (* the router survives a fleet with no workers: it answers the degraded
     widening from its own registry instead of erroring *)
  let c = or_fail (Client.connect_retry ~deadline_s:20.0 (Topology.router_addr topology)) in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  let served =
    expect_report (or_fail (Client.call ~timeout_s:20.0 c (P.Check_current { key = "mini"; config = "" })))
  in
  check Alcotest.bool "degraded answer from the router fallback" true served.P.degraded

let tests =
  [
    tc "hash ring is deterministic" test_ring_deterministic;
    tc "preference covers every shard once" test_ring_preference_complete;
    tc "ring spreads keys over shards" test_ring_distribution;
    tc "topology state file atomic round-trip" test_topology_state_file;
    tc "connect_retry gives up at the deadline" test_connect_retry_gives_up;
    tc "receive timeout against a silent server" test_receive_timeout;
    tc "partial write closes conn and counts" test_conn_write_failed_counter;
    tc "chaos plans are seeded and bounded" test_chaos_plan_deterministic;
    tc "fleet end-to-end: identity, kill -9 in flight, two-phase reload"
      test_fleet_end_to_end;
    tc "crash loop trips the shard breaker" test_crash_loop_trips;
  ]
