let () =
  Alcotest.run "violet"
    [
      ("vsmt", Test_vsmt.tests);
      ("vir", Test_vir.tests);
      ("vruntime", Test_vruntime.tests);
      ("vsymexec", Test_vsymexec.tests);
      ("vanalysis", Test_vanalysis.tests);
      ("vtrace", Test_vtrace.tests);
      ("tracefile", Test_tracefile.tests);
      ("vmodel", Test_vmodel.tests);
      ("vchecker", Test_vchecker.tests);
      ("matcheck", Test_matcheck.tests);
      ("pipeline", Test_pipeline.tests);
      ("targets", Test_targets.tests);
      ("extensions", Test_extensions.tests);
      ("properties", Test_properties.tests);
      ("report", Test_report.tests);
      ("patterns", Test_patterns.tests);
      ("subsystems", Test_subsystems.tests);
      ("vsched", Test_vsched.tests);
      (* vresilience before vpar: its kill -9 test needs [Unix.fork], which
         OCaml 5 forbids once any domain has been spawned *)
      ("vresilience", Test_vresilience.tests);
      (* vfleet forks a supervisor, so it too must precede every
         domain-spawning suite *)
      ("vfleet", Test_vfleet.tests);
      ("vpar", Test_vpar.tests);
      ("vslice", Test_vslice.tests);
      (* vserve spawns the daemon on a domain, so it also stays after the
         fork-based vresilience tests *)
      ("vserve", Test_vserve.tests);
      (* vfuzz's oracle tests also spawn daemon domains *)
      ("vfuzz", Test_vfuzz.tests);
      ("vinc", Test_vinc.tests);
      ("endtoend", Test_endtoend.tests);
      ("smoke", Test_smoke.tests);
    ]
