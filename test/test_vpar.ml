(* vpar: pool primitives, and the headline determinism contract of the
   parallel executor — a [--jobs N] analysis of a random program produces a
   byte-identical serialized impact model to [--jobs 1], including under an
   injected (manual-clock) deadline.  Runs with real spawned domains even on
   a single-core machine: [Vpar.Pool.clamp_jobs] deliberately allows
   oversubscription so worker interleavings are exercised anywhere. *)

module B = Vresilience.Budget
open Vir.Builder

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

(* ------------------------------------------------------------------ *)
(* Pool primitives                                                     *)
(* ------------------------------------------------------------------ *)

let test_map_array_order () =
  let xs = Array.init 1000 (fun i -> i) in
  let out = Vpar.Pool.map_array ~jobs:4 (fun x -> x * x) xs in
  check
    Alcotest.(array int)
    "results at input indices"
    (Array.map (fun x -> x * x) xs)
    out;
  check Alcotest.(array int) "empty" [||] (Vpar.Pool.map_array ~jobs:4 (fun x -> x) [||])

let test_run_propagates_exception () =
  match Vpar.Pool.run ~jobs:4 (fun w -> if w = 2 then failwith "boom") with
  | () -> Alcotest.fail "expected the worker failure to re-raise"
  | exception Failure msg -> check Alcotest.string "worker error surfaces" "boom" msg

let test_clamp_jobs () =
  check Alcotest.int "floor" 1 (Vpar.Pool.clamp_jobs 0);
  check Alcotest.int "floor negative" 1 (Vpar.Pool.clamp_jobs (-3));
  check Alcotest.int "identity" 4 (Vpar.Pool.clamp_jobs 4);
  check Alcotest.int "oversubscription allowed" 8 (Vpar.Pool.clamp_jobs 8);
  check Alcotest.int "absolute cap" 64 (Vpar.Pool.clamp_jobs 10_000)

let test_default_jobs_env () =
  let saved = Sys.getenv_opt "VIOLET_JOBS" in
  let restore () = Unix.putenv "VIOLET_JOBS" (Option.value saved ~default:"") in
  Fun.protect ~finally:restore (fun () ->
      Unix.putenv "VIOLET_JOBS" "3";
      check Alcotest.int "reads env" 3 (Vpar.Pool.default_jobs ());
      Unix.putenv "VIOLET_JOBS" "0";
      check Alcotest.int "non-positive falls back" 1 (Vpar.Pool.default_jobs ());
      Unix.putenv "VIOLET_JOBS" "nope";
      check Alcotest.int "garbage falls back" 1 (Vpar.Pool.default_jobs ()))

(* ------------------------------------------------------------------ *)
(* Determinism: --jobs 4 == --jobs 1, byte for byte                    *)
(* ------------------------------------------------------------------ *)

let registry =
  Vruntime.Config_registry.(
    make ~system:"par"
      [
        param_bool "a" ~default:false "flag a";
        param_int "n" ~lo:0 ~hi:7 ~default:3 "small int";
      ])

let workload =
  Vruntime.Workload.(
    template "w" [ wparam_enum "k" ~values:[ "X"; "Y"; "Z" ] "kind" ])

let cond_gen =
  QCheck2.Gen.oneofl
    [
      cfg "n" >. i 4;
      cfg "n" <. i 2;
      wl "k" ==. i 1;
      (cfg "n" <. i 3) ||. (wl "k" ==. i 2);
      (cfg "a" ==. i 0) &&. (cfg "n" >=. i 2);
      cfg "n" %. i 2 ==. i 0;
    ]

let prim_gen =
  QCheck2.Gen.oneofl
    [
      fsync;
      compute (i 50);
      buffered_write (i 1024);
      buffered_read (i 256);
      net_send (i 128);
      mutex_lock;
      mutex_unlock;
    ]

(* Random statement blocks: prims, nested branches, a call into a defined
   helper, and a Pure library call whose symbolic argument makes the
   executor mint a fresh (path-named) symbol. *)
let block_gen =
  QCheck2.Gen.(
    let stmt_leaf =
      oneof
        [
          prim_gen;
          return (call "helper" []);
          return (call ~dest:"x" "pure_op" [ cfg "n" ]);
        ]
    in
    let rec block depth =
      let stmt =
        if depth = 0 then stmt_leaf
        else
          oneof
            [
              stmt_leaf;
              (cond_gen >>= fun c ->
               block (depth - 1) >>= fun t ->
               block (depth - 1) >>= fun e -> return (if_ c t e));
            ]
      in
      list_size (int_range 1 3) stmt
    in
    block 2)

let program_gen =
  QCheck2.Gen.(
    block_gen >>= fun then_block ->
    block_gen >>= fun else_block ->
    return
      (program ~name:"gen" ~entry:"main"
         [
           (* every generated program branches on the analyzed parameter *)
           func "main" [ if_ (cfg "a" ==. i 1) then_block else_block; ret_void ];
           func "helper" [ compute (i 20); fsync; ret_void ];
           library "pure_op" ~effect:Vir.Ast.Pure (fun vs ->
               match vs with [ v ] -> (v * 2) + 1 | _ -> 7);
         ]))

let policy_gen =
  QCheck2.Gen.oneofl
    Vsymexec.Executor.[ Dfs; Bfs; Random_path 42; Coverage_guided ]

let scenario_gen =
  QCheck2.Gen.(
    program_gen >>= fun program ->
    policy_gen >>= fun policy ->
    bool >>= fun fault_injection -> return (program, policy, fault_injection))

(* Serialized impact model under a pinned manual clock, so the one
   legitimately wall-clock-dependent field ([analysis_wall_s]) is 0 in every
   run.  [deadline]: [None] = unlimited; [Some 0.] = pre-expired, the
   degenerate injected-deadline case both drivers must cut identically. *)
let model_for ~jobs ~deadline (program, policy, fault_injection) =
  let clock () = 0. in
  let budget = B.with_clock (B.with_deadline B.default deadline) clock in
  let target = { Violet.Pipeline.name = "par"; program; registry; workloads = [ workload ] } in
  let opts =
    {
      Violet.Pipeline.default_options with
      Violet.Pipeline.jobs;
      policy;
      fault_injection;
      budget;
    }
  in
  match Violet.Pipeline.analyze ~opts target "a" with
  | Ok a -> Vmodel.Impact_model.to_string a.Violet.Pipeline.model
  | Error e -> "error: " ^ Violet.Pipeline.error_to_string e

let prop_jobs_deterministic =
  QCheck2.Test.make ~name:"--jobs 4 model is byte-identical to --jobs 1" ~count:20
    scenario_gen (fun scenario ->
      String.equal
        (model_for ~jobs:1 ~deadline:None scenario)
        (model_for ~jobs:4 ~deadline:None scenario))

let prop_jobs_deterministic_under_deadline =
  QCheck2.Test.make
    ~name:"--jobs 4 model matches --jobs 1 under an injected deadline" ~count:10
    scenario_gen (fun scenario ->
      (* pre-expired: both drivers must drain the root identically *)
      String.equal
        (model_for ~jobs:1 ~deadline:(Some 0.) scenario)
        (model_for ~jobs:4 ~deadline:(Some 0.) scenario)
      (* far-off deadline on a manual clock: never fires, full run *)
      && String.equal
           (model_for ~jobs:1 ~deadline:(Some 1e9) scenario)
           (model_for ~jobs:4 ~deadline:(Some 1e9) scenario))

(* worker telemetry sanity: a parallel run reports its workers *)
let test_parallel_telemetry () =
  let scenario =
    ( program ~name:"gen" ~entry:"main"
        [
          func "main"
            [
              if_ (cfg "a" ==. i 1) [ call "helper" [] ] [ fsync ];
              if_ (cfg "n" >. i 4) [ buffered_write (i 2048) ] [];
              ret_void;
            ];
          func "helper" [ compute (i 20); ret_void ];
          library "pure_op" ~effect:Vir.Ast.Pure (fun _ -> 7);
        ],
      Vsymexec.Executor.Bfs,
      false )
  in
  let program, policy, fault_injection = scenario in
  let target = { Violet.Pipeline.name = "par"; program; registry; workloads = [ workload ] } in
  let opts =
    {
      Violet.Pipeline.default_options with
      Violet.Pipeline.jobs = 4;
      policy;
      fault_injection;
    }
  in
  match Violet.Pipeline.analyze ~opts target "a" with
  | Error e -> Alcotest.fail (Violet.Pipeline.error_to_string e)
  | Ok a ->
    let sched = a.Violet.Pipeline.result.Vsymexec.Executor.sched in
    check Alcotest.int "jobs recorded" 4 sched.Vsched.Exploration_stats.jobs;
    check Alcotest.int "one worker record per domain" 4
      (List.length sched.Vsched.Exploration_stats.workers);
    let total_steps =
      List.fold_left
        (fun acc (w : Vsched.Exploration_stats.worker) ->
          acc + w.Vsched.Exploration_stats.w_steps)
        0 sched.Vsched.Exploration_stats.workers
    in
    check Alcotest.int "worker steps sum to the run's steps"
      sched.Vsched.Exploration_stats.steps total_steps

let qt = QCheck_alcotest.to_alcotest

let tests =
  [
    tc "map_array keeps input order" test_map_array_order;
    tc "worker exceptions propagate" test_run_propagates_exception;
    tc "clamp_jobs bounds" test_clamp_jobs;
    tc "default_jobs reads VIOLET_JOBS" test_default_jobs_env;
    qt prop_jobs_deterministic;
    qt prop_jobs_deterministic_under_deadline;
    tc "parallel run reports worker telemetry" test_parallel_telemetry;
  ]
