(* vpar: pool primitives, and the headline determinism contract of the
   parallel executor — a [--jobs N] analysis of a random program produces a
   byte-identical serialized impact model to [--jobs 1], including under an
   injected (manual-clock) deadline.  Runs with real spawned domains even on
   a single-core machine: [Vpar.Pool.clamp_jobs] deliberately allows
   oversubscription so worker interleavings are exercised anywhere. *)

module B = Vresilience.Budget
open Vir.Builder

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

(* ------------------------------------------------------------------ *)
(* Pool primitives                                                     *)
(* ------------------------------------------------------------------ *)

let test_map_array_order () =
  let xs = Array.init 1000 (fun i -> i) in
  let out = Vpar.Pool.map_array ~jobs:4 (fun x -> x * x) xs in
  check
    Alcotest.(array int)
    "results at input indices"
    (Array.map (fun x -> x * x) xs)
    out;
  check Alcotest.(array int) "empty" [||] (Vpar.Pool.map_array ~jobs:4 (fun x -> x) [||])

let test_run_propagates_exception () =
  match Vpar.Pool.run ~jobs:4 (fun w -> if w = 2 then failwith "boom") with
  | () -> Alcotest.fail "expected the worker failure to re-raise"
  | exception Failure msg -> check Alcotest.string "worker error surfaces" "boom" msg

let test_clamp_jobs () =
  check Alcotest.int "floor" 1 (Vpar.Pool.clamp_jobs 0);
  check Alcotest.int "floor negative" 1 (Vpar.Pool.clamp_jobs (-3));
  check Alcotest.int "identity" 4 (Vpar.Pool.clamp_jobs 4);
  check Alcotest.int "oversubscription allowed" 8 (Vpar.Pool.clamp_jobs 8);
  check Alcotest.int "absolute cap" 64 (Vpar.Pool.clamp_jobs 10_000)

let test_default_jobs_env () =
  let saved = Sys.getenv_opt "VIOLET_JOBS" in
  let restore () = Unix.putenv "VIOLET_JOBS" (Option.value saved ~default:"") in
  Fun.protect ~finally:restore (fun () ->
      Unix.putenv "VIOLET_JOBS" "3";
      check Alcotest.int "reads env" 3 (Vpar.Pool.default_jobs ());
      Unix.putenv "VIOLET_JOBS" "0";
      check Alcotest.int "non-positive falls back" 1 (Vpar.Pool.default_jobs ());
      Unix.putenv "VIOLET_JOBS" "nope";
      check Alcotest.int "garbage falls back" 1 (Vpar.Pool.default_jobs ()))

(* ------------------------------------------------------------------ *)
(* Determinism: --jobs 4 == --jobs 1, byte for byte                    *)
(* ------------------------------------------------------------------ *)

let registry =
  Vruntime.Config_registry.(
    make ~system:"par"
      [
        param_bool "a" ~default:false "flag a";
        param_int "n" ~lo:0 ~hi:7 ~default:3 "small int";
      ])

let workload =
  Vruntime.Workload.(
    template "w" [ wparam_enum "k" ~values:[ "X"; "Y"; "Z" ] "kind" ])

let cond_gen =
  QCheck2.Gen.oneofl
    [
      cfg "n" >. i 4;
      cfg "n" <. i 2;
      wl "k" ==. i 1;
      (cfg "n" <. i 3) ||. (wl "k" ==. i 2);
      (cfg "a" ==. i 0) &&. (cfg "n" >=. i 2);
      cfg "n" %. i 2 ==. i 0;
    ]

let prim_gen =
  QCheck2.Gen.oneofl
    [
      fsync;
      compute (i 50);
      buffered_write (i 1024);
      buffered_read (i 256);
      net_send (i 128);
      mutex_lock;
      mutex_unlock;
    ]

(* Random statement blocks: prims, nested branches, a call into a defined
   helper, and a Pure library call whose symbolic argument makes the
   executor mint a fresh (path-named) symbol. *)
let block_gen =
  QCheck2.Gen.(
    let stmt_leaf =
      oneof
        [
          prim_gen;
          return (call "helper" []);
          return (call ~dest:"x" "pure_op" [ cfg "n" ]);
        ]
    in
    let rec block depth =
      let stmt =
        if depth = 0 then stmt_leaf
        else
          oneof
            [
              stmt_leaf;
              (cond_gen >>= fun c ->
               block (depth - 1) >>= fun t ->
               block (depth - 1) >>= fun e -> return (if_ c t e));
            ]
      in
      list_size (int_range 1 3) stmt
    in
    block 2)

let program_gen =
  QCheck2.Gen.(
    block_gen >>= fun then_block ->
    block_gen >>= fun else_block ->
    return
      (program ~name:"gen" ~entry:"main"
         [
           (* every generated program branches on the analyzed parameter *)
           func "main" [ if_ (cfg "a" ==. i 1) then_block else_block; ret_void ];
           func "helper" [ compute (i 20); fsync; ret_void ];
           library "pure_op" ~effect:Vir.Ast.Pure (fun vs ->
               match vs with [ v ] -> (v * 2) + 1 | _ -> 7);
         ]))

let policy_gen =
  QCheck2.Gen.oneofl
    Vsymexec.Executor.[ Dfs; Bfs; Random_path 42; Coverage_guided ]

let scenario_gen =
  QCheck2.Gen.(
    program_gen >>= fun program ->
    policy_gen >>= fun policy ->
    bool >>= fun fault_injection -> return (program, policy, fault_injection))

(* Serialized impact model under a pinned manual clock, so the one
   legitimately wall-clock-dependent field ([analysis_wall_s]) is 0 in every
   run.  [deadline]: [None] = unlimited; [Some 0.] = pre-expired, the
   degenerate injected-deadline case both drivers must cut identically. *)
let model_for ~jobs ~deadline (program, policy, fault_injection) =
  let clock () = 0. in
  let budget = B.with_clock (B.with_deadline B.default deadline) clock in
  let target = { Violet.Pipeline.name = "par"; program; registry; workloads = [ workload ] } in
  let opts =
    {
      Violet.Pipeline.default_options with
      Violet.Pipeline.jobs;
      policy;
      fault_injection;
      budget;
      (* byte-identity is this property's whole point: pin fast-nondet off
         even when VIOLET_FAST_NONDET is exported (the CI smoke does) *)
      fast_nondet = false;
    }
  in
  match Violet.Pipeline.analyze ~opts target "a" with
  | Ok a -> Vmodel.Impact_model.to_string a.Violet.Pipeline.model
  | Error e -> "error: " ^ Violet.Pipeline.error_to_string e

let prop_jobs_deterministic =
  QCheck2.Test.make ~name:"--jobs 4 model is byte-identical to --jobs 1" ~count:20
    scenario_gen (fun scenario ->
      String.equal
        (model_for ~jobs:1 ~deadline:None scenario)
        (model_for ~jobs:4 ~deadline:None scenario))

let prop_jobs_deterministic_under_deadline =
  QCheck2.Test.make
    ~name:"--jobs 4 model matches --jobs 1 under an injected deadline" ~count:10
    scenario_gen (fun scenario ->
      (* pre-expired: both drivers must drain the root identically *)
      String.equal
        (model_for ~jobs:1 ~deadline:(Some 0.) scenario)
        (model_for ~jobs:4 ~deadline:(Some 0.) scenario)
      (* far-off deadline on a manual clock: never fires, full run *)
      && String.equal
           (model_for ~jobs:1 ~deadline:(Some 1e9) scenario)
           (model_for ~jobs:4 ~deadline:(Some 1e9) scenario))

(* ------------------------------------------------------------------ *)
(* Deferred renumbering, fast-nondet, and the batch quantum            *)
(* ------------------------------------------------------------------ *)

let analysis_for ~jobs ~fast_nondet (program, policy, fault_injection) =
  let clock () = 0. in
  let budget = B.with_clock B.default clock in
  let target = { Violet.Pipeline.name = "par"; program; registry; workloads = [ workload ] } in
  let opts =
    {
      Violet.Pipeline.default_options with
      Violet.Pipeline.jobs;
      policy;
      fault_injection;
      budget;
      fast_nondet;
    }
  in
  Violet.Pipeline.analyze ~opts target "a"

let fixed_scenario =
  ( program ~name:"gen" ~entry:"main"
      [
        func "main"
          [
            if_ (cfg "a" ==. i 1) [ call "helper" [] ] [ fsync ];
            if_ (cfg "n" >. i 4) [ buffered_write (i 2048) ] [ net_send (i 128) ];
            if_ (wl "k" ==. i 1) [ compute (i 50) ] [];
            ret_void;
          ];
        func "helper" [ compute (i 20); fsync; ret_void ];
        library "pure_op" ~effect:Vir.Ast.Pure (fun _ -> 7);
      ],
    Vsymexec.Executor.Bfs,
    false )

(* The deferred renumbering contract: after a default-mode parallel run the
   finished states are numbered 0..n-1 in fork-path order with lineage
   collapsed, no matter how workers interleaved. *)
let test_deferred_renumbering () =
  List.iter
    (fun jobs ->
      match analysis_for ~jobs ~fast_nondet:false fixed_scenario with
      | Error e -> Alcotest.fail (Violet.Pipeline.error_to_string e)
      | Ok a ->
        let states = a.Violet.Pipeline.result.Vsymexec.Executor.states in
        check Alcotest.bool "has states" true (states <> []);
        List.iteri
          (fun i (st : Vsymexec.Sym_state.t) ->
            check Alcotest.int
              (Printf.sprintf "jobs=%d: ids are 0..n-1 in order" jobs)
              i st.Vsymexec.Sym_state.id;
            check Alcotest.(option int)
              (Printf.sprintf "jobs=%d: lineage collapsed" jobs)
              None st.Vsymexec.Sym_state.parent)
          states;
        let paths =
          List.map
            (fun (st : Vsymexec.Sym_state.t) ->
              Vsymexec.Fork_path.to_string st.Vsymexec.Sym_state.path)
            states
        in
        check
          Alcotest.(list string)
          (Printf.sprintf "jobs=%d: states sorted by fork path" jobs)
          (List.sort String.compare paths) paths)
    [ 1; 4 ]

(* --fast-nondet keeps verdict-identity with the sequential run across
   generated vfuzz systems even though it gives up model byte-identity. *)
let prop_fast_nondet_verdict_identity =
  QCheck2.Test.make ~name:"--fast-nondet verdicts match sequential on vfuzz systems"
    ~count:3
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
      let specs = Vfuzz.Generate.corpus ~seed ~count:1 () in
      List.for_all
        (fun spec ->
          let seq = Vfuzz.Harness.score_spec spec in
          let fast =
            Vfuzz.Harness.score_spec
              ~opts:
                {
                  Vfuzz.Oracle.default_opts with
                  Violet.Pipeline.jobs = 4;
                  fast_nondet = true;
                }
              spec
          in
          seq = fast)
        specs)

(* Work stealing under the batch quantum: a tiny time slice forces constant
   preemption and cross-worker stealing while both sides of every fork still
   go out as one feasibility batch — and the reduction must erase all of it. *)
let test_work_stealing_tiny_slice () =
  let program, _, _ = fixed_scenario in
  let config = function "a" -> 0 | _ -> 3 in
  let workload _ = 0 in
  let sym_configs =
    [
      ("a", Vsmt.Expr.{ name = "a"; dom = Vsmt.Dom.bool; origin = Config });
      ("n", Vsmt.Expr.{ name = "n"; dom = Vsmt.Dom.int_range 0 7; origin = Config });
    ]
  in
  let run jobs =
    let opts =
      {
        (Vsymexec.Executor.default_options ~env:Vruntime.Hw_env.hdd_server ~config
           ~workload ())
        with
        Vsymexec.Executor.sym_configs;
        policy = Vsymexec.Executor.Bfs;
        time_slice = 1;
        jobs;
      }
    in
    Vsymexec.Executor.run opts program
  in
  let fingerprint (r : Vsymexec.Executor.result) =
    List.map
      (fun (st : Vsymexec.Sym_state.t) ->
        ( st.Vsymexec.Sym_state.id,
          Vsymexec.Fork_path.to_string st.Vsymexec.Sym_state.path,
          Fmt.str "%a" Vsymexec.Sym_state.pp_status st.Vsymexec.Sym_state.status ))
      r.Vsymexec.Executor.states
  in
  let seq = run 1 in
  let par = run 4 in
  check Alcotest.bool "explored more than one path" true
    (List.length seq.Vsymexec.Executor.states > 1);
  check
    Alcotest.(list (triple int string string))
    "time_slice=1, jobs=4 reduction matches sequential" (fingerprint seq)
    (fingerprint par)

(* The shared striped solver cache hammered from real concurrent domains:
   every domain must see exactly the direct solver's verdicts.  Lives here
   (not in test_vsched) because it spawns domains, which forbids the
   [Unix.fork]-based suites that run between vsched and vpar. *)
let test_striped_concurrent_verdicts () =
  let module SC = Vsched.Solver_cache.Striped in
  let module E = Vsmt.Expr in
  let module Solver = Vsmt.Solver in
  let qvar name lo hi = E.{ name; dom = Vsmt.Dom.int_range lo hi; origin = Config } in
  let qa = qvar "qa" 0 1 and qb = qvar "qb" 0 7 and qc = qvar "qc" 0 7 in
  let c = SC.create ~shards:4 () in
  let queries =
    E.
      [
        [ of_var qb >. const 3 ];
        [ of_var qb >. const 5; of_var qb <. const 3 ];
        [ of_var qa ==. const 1; of_var qc <. const 5 ];
        [ of_var qc >=. const 0 ];
        [ of_var qa ==. const 1; of_var qa ==. const 0 ];
      ]
  in
  let direct =
    List.map
      (fun q ->
        match Solver.check ~max_nodes:4_000 q with Solver.Unsat -> false | _ -> true)
      queries
  in
  let domains =
    List.init 4 (fun _ ->
        Domain.spawn (fun () ->
            List.map (fun q -> fst (SC.is_feasible c ~max_nodes:4_000 q)) queries))
  in
  List.iter
    (fun d ->
      check
        Alcotest.(list bool)
        "every domain sees the direct solver's verdicts" direct (Domain.join d))
    domains

(* worker telemetry sanity: a parallel run reports its workers *)
let test_parallel_telemetry () =
  let scenario =
    ( program ~name:"gen" ~entry:"main"
        [
          func "main"
            [
              if_ (cfg "a" ==. i 1) [ call "helper" [] ] [ fsync ];
              if_ (cfg "n" >. i 4) [ buffered_write (i 2048) ] [];
              ret_void;
            ];
          func "helper" [ compute (i 20); ret_void ];
          library "pure_op" ~effect:Vir.Ast.Pure (fun _ -> 7);
        ],
      Vsymexec.Executor.Bfs,
      false )
  in
  let program, policy, fault_injection = scenario in
  let target = { Violet.Pipeline.name = "par"; program; registry; workloads = [ workload ] } in
  let opts =
    {
      Violet.Pipeline.default_options with
      Violet.Pipeline.jobs = 4;
      policy;
      fault_injection;
    }
  in
  match Violet.Pipeline.analyze ~opts target "a" with
  | Error e -> Alcotest.fail (Violet.Pipeline.error_to_string e)
  | Ok a ->
    let sched = a.Violet.Pipeline.result.Vsymexec.Executor.sched in
    check Alcotest.int "jobs recorded" 4 sched.Vsched.Exploration_stats.jobs;
    check Alcotest.int "one worker record per domain" 4
      (List.length sched.Vsched.Exploration_stats.workers);
    let total_steps =
      List.fold_left
        (fun acc (w : Vsched.Exploration_stats.worker) ->
          acc + w.Vsched.Exploration_stats.w_steps)
        0 sched.Vsched.Exploration_stats.workers
    in
    check Alcotest.int "worker steps sum to the run's steps"
      sched.Vsched.Exploration_stats.steps total_steps;
    (match sched.Vsched.Exploration_stats.batch with
    | None -> Alcotest.fail "batch-feasibility counters missing"
    | Some b ->
      check Alcotest.bool "feasibility went out in batches" true
        (b.Vsched.Exploration_stats.b_batches > 0);
      check Alcotest.bool "batches carry at least one query each" true
        (b.Vsched.Exploration_stats.b_queries >= b.Vsched.Exploration_stats.b_batches));
    check Alcotest.bool "shared solver-cache size surfaces in memo_sizes" true
      (List.mem_assoc "solver_cache_feas_entries" sched.Vsched.Exploration_stats.memo_sizes)

let qt = QCheck_alcotest.to_alcotest

let tests =
  [
    tc "map_array keeps input order" test_map_array_order;
    tc "worker exceptions propagate" test_run_propagates_exception;
    tc "clamp_jobs bounds" test_clamp_jobs;
    tc "default_jobs reads VIOLET_JOBS" test_default_jobs_env;
    qt prop_jobs_deterministic;
    qt prop_jobs_deterministic_under_deadline;
    tc "deferred renumbering yields canonical ids" test_deferred_renumbering;
    qt prop_fast_nondet_verdict_identity;
    tc "work stealing under time_slice=1 stays deterministic" test_work_stealing_tiny_slice;
    tc "striped cache agrees under concurrent domains" test_striped_concurrent_verdicts;
    tc "parallel run reports worker telemetry" test_parallel_telemetry;
  ]
