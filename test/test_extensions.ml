(* Tests for the paper's Section 8 extensions implemented here: fault
   injection for error-handling-only specious configuration, and
   environment extrapolation. *)

module Ex = Vsymexec.Executor
module S = Vsymexec.Sym_state
module P = Violet.Pipeline
open Vir.Builder

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f
let env = Vruntime.Hw_env.hdd_server

(* a parameter whose performance effect exists ONLY in error handling:
   retry_sync makes write failures retry with a synchronous flush *)
let error_handling_program =
  program ~name:"eh" ~entry:"main"
    [
      func "main"
        [
          call ~dest:"r" "try_write" [ i 4096 ];
          if_ (lv "r" <. i 0)
            [ if_ (cfg "retry_sync" ==. i 1) [ fsync; fsync; fsync ] [ compute (i 10) ] ]
            [];
          ret_void;
        ];
      library "try_write" ~effect:Benign ~cost:[ Buffered_write, 4096 ] (fun _ -> 0);
    ]

let registry =
  Vruntime.Config_registry.(
    make ~system:"eh" [ param_bool "retry_sync" ~default:true "sync retry on write error" ])

let target =
  { P.name = "eh"; program = error_handling_program; registry; workloads = [] }

let run ~fault_injection =
  let opts =
    {
      (Ex.default_options ~env ~config:(fun _ -> 1) ~workload:(fun _ -> 0) ()) with
      Ex.fault_injection;
      sym_configs =
        [ "retry_sync",
          Vsmt.Expr.{ name = "retry_sync"; dom = Vsmt.Dom.bool; origin = Config } ];
    }
  in
  Ex.run opts error_handling_program

let terminated r =
  List.filter
    (fun (st : S.t) -> match st.S.status with S.Terminated _ -> true | _ -> false)
    r.Ex.states

let test_without_faults_invisible () =
  (* normal exploration never reaches the error branch: retry_sync looks
     performance-neutral *)
  let r = run ~fault_injection:false in
  check Alcotest.int "one path" 1 (List.length (terminated r));
  check Alcotest.bool "no fsync" true
    (List.for_all
       (fun (st : S.t) -> st.S.cost.Vruntime.Cost.io_calls = 0)
       (terminated r))

let test_with_faults_exposed () =
  let r = run ~fault_injection:true in
  let states = terminated r in
  check Alcotest.bool "error paths explored" true (List.length states >= 3);
  (* the retry_sync=1 failure path pays three fsyncs *)
  check Alcotest.bool "slow error path found" true
    (List.exists
       (fun (st : S.t) -> st.S.cost.Vruntime.Cost.io_calls >= 3)
       states)

let test_pipeline_fault_injection () =
  let plain = P.analyze_exn target "retry_sync" in
  check Alcotest.int "invisible without faults" 0
    (List.length plain.P.model.Vmodel.Impact_model.poor_state_ids);
  let faulty =
    P.analyze_exn ~opts:{ P.default_options with P.fault_injection = true } target
      "retry_sync"
  in
  check Alcotest.bool "poor state under faults" true
    (faulty.P.model.Vmodel.Impact_model.poor_state_ids <> [])

let test_fault_paths_in_cost_table () =
  (* the forked -1 error paths must land in the cost table as rows of their
     own, carrying their own configuration constraints — not be folded into
     the happy path *)
  let plain = P.analyze_exn target "retry_sync" in
  let faulty =
    P.analyze_exn ~opts:{ P.default_options with P.fault_injection = true } target
      "retry_sync"
  in
  check Alcotest.bool "fault injection adds cost-table rows" true
    (List.length faulty.P.rows > List.length plain.P.rows);
  let mentions_retry (r : Vmodel.Cost_row.t) =
    List.exists
      (fun e ->
        let s = Vsmt.Expr.to_string e in
        let rec has i =
          i + 10 <= String.length s && (String.sub s i 10 = "retry_sync" || has (i + 1))
        in
        has 0)
      r.Vmodel.Cost_row.config_constraints
  in
  match
    List.find_opt
      (fun (r : Vmodel.Cost_row.t) -> r.Vmodel.Cost_row.cost.Vruntime.Cost.io_calls >= 3)
      faulty.P.rows
  with
  | None -> Alcotest.fail "slow error-handling path missing from the cost table"
  | Some r ->
    check Alcotest.bool "fault row carries its own constraints" true (mentions_retry r)

let test_environment_extrapolation () =
  (* the same poor pair shrinks dramatically on a ramdisk, while logical
     metrics stay identical — the extrapolation story of Section 4.5 *)
  let a = P.analyze_exn Fixtures.target "autocommit" in
  match
    List.find_opt
      (fun (p : Vmodel.Diff_analysis.poor_pair) ->
        p.Vmodel.Diff_analysis.latency_ratio > 5.)
      a.P.diff.Vmodel.Diff_analysis.pairs
  with
  | None -> Alcotest.fail "no big pair"
  | Some pair ->
    let ratio env =
      match
        Violet.Validate.pair_ratio ~env ~target:Fixtures.target ~entry:"dispatch_command"
          ~slow:pair.Vmodel.Diff_analysis.slow ~fast:pair.Vmodel.Diff_analysis.fast ()
      with
      | Some v -> v.Violet.Validate.ratio
      | None -> Alcotest.fail "not validatable"
    in
    let hdd = ratio Vruntime.Hw_env.hdd_server in
    let ram = ratio Vruntime.Hw_env.ramdisk in
    check Alcotest.bool "hdd shows the damage" true (hdd > 3.);
    check Alcotest.bool "ramdisk hides it" true (ram < Stdlib.( /. ) hdd 2.)

let tests =
  [
    tc "error path invisible without faults" test_without_faults_invisible;
    tc "fault injection exposes error path" test_with_faults_exposed;
    tc "pipeline fault injection" test_pipeline_fault_injection;
    tc "fault paths land in the cost table" test_fault_paths_in_cost_table;
    tc "environment extrapolation" test_environment_extrapolation;
  ]
