(* Tests for the IR: builder, address resolution, CFG, postdominators and
   the call graph. *)

open Vir.Builder
module Ast = Vir.Ast
module Cfg = Vir.Cfg
module Postdom = Vir.Postdom
module Callgraph = Vir.Callgraph

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

let simple_program =
  program ~name:"p" ~entry:"main"
    [
      func "main" [ call "helper" []; call "helper" []; ret_void ];
      func "helper" [ compute (i 10); ret_void ];
      func "unreachable" [ call "helper" []; ret_void ];
    ]

(* ------------------------------------------------------------------ *)
(* Builder                                                             *)
(* ------------------------------------------------------------------ *)

let test_addresses_distinct () =
  let addrs = List.map (fun (f : Ast.func) -> f.Ast.addr) simple_program.Ast.funcs in
  check Alcotest.int "all distinct" (List.length addrs)
    (List.length (List.sort_uniq Int.compare addrs));
  List.iter (fun a -> check Alcotest.bool "nonzero" true (a > 0)) addrs

let test_ret_addrs_in_caller_range () =
  let main = Ast.find_func simple_program "main" in
  let rets = ref [] in
  Ast.iter_stmts
    (function Ast.Call { ret_addr; _ } -> rets := ret_addr :: !rets | _ -> ())
    (Ast.func_body main);
  check Alcotest.int "two call sites" 2 (List.length !rets);
  List.iter
    (fun r ->
      check Alcotest.bool "inside main's range" true
        (r > main.Ast.addr && r < main.Ast.addr + 0x1000))
    !rets;
  check Alcotest.int "sites distinct" 2 (List.length (List.sort_uniq Int.compare !rets))

let test_builder_validation () =
  Alcotest.check_raises "unknown callee"
    (Failure "program bad: main calls unknown function nope") (fun () ->
      ignore (program ~name:"bad" ~entry:"main" [ func "main" [ call "nope" [] ] ]));
  Alcotest.check_raises "duplicate" (Failure "program dup: duplicate function f") (fun () ->
      ignore (program ~name:"dup" ~entry:"f" [ func "f" []; func "f" [] ]));
  Alcotest.check_raises "missing entry" (Failure "program noent: missing entry main")
    (fun () -> ignore (program ~name:"noent" ~entry:"main" [ func "f" [] ]))

let test_reads () =
  let e = cfg "a" +. wl "w" *. cfg "b" +. cfg "a" in
  check (Alcotest.list Alcotest.string) "config reads" [ "a"; "b" ] (Ast.config_reads e);
  check (Alcotest.list Alcotest.string) "workload reads" [ "w" ] (Ast.workload_reads e)

(* ------------------------------------------------------------------ *)
(* CFG                                                                 *)
(* ------------------------------------------------------------------ *)

let diamond =
  func "diamond"
    [
      set "x" (i 0);
      if_ (cfg "c" ==. i 1) [ set "x" (i 1) ] [ set "x" (i 2) ];
      compute (i 5);
      ret_void;
    ]

let test_cfg_diamond () =
  let g = Cfg.of_func diamond in
  (* entry, exit, x=0, if, x=1, x=2, compute, return *)
  check Alcotest.int "node count" 8 (Array.length g.Cfg.nodes);
  let branch = match Cfg.branch_nodes g with [ b ] -> b | _ -> Alcotest.fail "one branch" in
  check Alcotest.int "two successors" 2 (List.length branch.Cfg.succs)

let test_cfg_while () =
  let f =
    func "loop" [ set "i" (i 0); while_ (lv "i" <. i 3) [ set "i" (lv "i" +. i 1) ]; ret_void ]
  in
  let g = Cfg.of_func f in
  let cond = match Cfg.branch_nodes g with [ b ] -> b | _ -> Alcotest.fail "one branch" in
  (* loop body feeds back into the condition *)
  check Alcotest.bool "back edge" true
    (List.exists
       (fun (n : Cfg.node) -> List.mem cond.Cfg.id n.Cfg.succs && n.Cfg.id <> cond.Cfg.id)
       (Array.to_list g.Cfg.nodes));
  check Alcotest.int "cond has 2 succs" 2 (List.length cond.Cfg.succs)

let test_cfg_return_cuts_flow () =
  let f = func "early" [ ret_void; compute (i 1) ] in
  let g = Cfg.of_func f in
  (* the compute node after return is unreachable: no predecessors *)
  let unreachable =
    Array.to_list g.Cfg.nodes
    |> List.filter (fun (n : Cfg.node) ->
           n.Cfg.stmt <> None && n.Cfg.preds = [] && n.Cfg.id <> g.Cfg.entry_id)
  in
  check Alcotest.int "one unreachable" 1 (List.length unreachable)

(* ------------------------------------------------------------------ *)
(* Postdominators                                                      *)
(* ------------------------------------------------------------------ *)

let test_postdom_diamond () =
  let g = Cfg.of_func diamond in
  let pd = Postdom.compute g in
  (* find nodes by label *)
  let by_label l =
    match
      Array.to_list g.Cfg.nodes |> List.find_opt (fun (n : Cfg.node) -> n.Cfg.label = l)
    with
    | Some n -> n.Cfg.id
    | None -> Alcotest.fail ("no node " ^ l)
  in
  let if_node = by_label "if" in
  let join = by_label "compute" in
  check Alcotest.bool "join postdominates branch" true (Postdom.postdominates pd join if_node);
  check Alcotest.bool "exit postdominates entry" true
    (Postdom.postdominates pd g.Cfg.exit_id g.Cfg.entry_id);
  (* the two arms are control dependent on the branch, the join is not *)
  let arms =
    Array.to_list g.Cfg.nodes
    |> List.filter (fun (n : Cfg.node) -> n.Cfg.label = "x = ...")
    |> List.map (fun (n : Cfg.node) -> n.Cfg.id)
    (* first x=0 is before the branch *)
    |> List.filter (fun id -> id > if_node)
  in
  check Alcotest.int "two arms" 2 (List.length arms);
  List.iter
    (fun arm ->
      check Alcotest.bool "arm control dep" true
        (Postdom.control_dependent pd g ~on:if_node arm))
    arms;
  check Alcotest.bool "join not control dep" false
    (Postdom.control_dependent pd g ~on:if_node join)

(* ------------------------------------------------------------------ *)
(* Callgraph                                                           *)
(* ------------------------------------------------------------------ *)

let test_callgraph () =
  let g = Callgraph.build simple_program in
  check (Alcotest.list Alcotest.string) "callees dedup" [ "helper" ] (Callgraph.callees g "main");
  check
    (Alcotest.list Alcotest.string)
    "callers" [ "main"; "unreachable" ]
    (List.sort String.compare (Callgraph.callers g "helper"));
  check (Alcotest.list (Alcotest.list Alcotest.string)) "paths"
    [ [ "main"; "helper" ] ]
    (Callgraph.paths_to g ~entry:"main" "helper");
  check (Alcotest.list Alcotest.string) "reachable" [ "helper"; "main" ]
    (Callgraph.reachable g ~from:"main")

let test_callgraph_cycles () =
  let p =
    program ~name:"cyc" ~entry:"a"
      [
        func "a" [ call "b" []; ret_void ];
        func "b" [ call "a" []; call "c" []; ret_void ];
        func "c" [ ret_void ];
      ]
  in
  let g = Callgraph.build p in
  (* simple paths only: the a->b->a cycle must not loop forever *)
  check (Alcotest.list (Alcotest.list Alcotest.string)) "paths through cycle"
    [ [ "a"; "b"; "c" ] ]
    (Callgraph.paths_to g ~entry:"a" "c")

(* ------------------------------------------------------------------ *)
(* Builder edge shapes the vfuzz generator emits                       *)
(* ------------------------------------------------------------------ *)

let test_branchless_function () =
  (* a straight-line function: no branch nodes, trivially postdominated *)
  let p =
    program ~name:"line" ~entry:"main"
      [ func "main" [ compute (i 5); buffered_write (i 128); ret_void ] ]
  in
  let main = Ast.find_func p "main" in
  let g = Cfg.of_func main in
  check Alcotest.int "no branch nodes" 0 (List.length (Cfg.branch_nodes g));
  let pd = Postdom.compute g in
  (* the exit postdominates every node of a straight line *)
  Array.iter
    (fun (n : Cfg.node) ->
      check Alcotest.bool "exit postdominates" true
        (Postdom.postdominates pd g.Cfg.exit_id n.Cfg.id))
    g.Cfg.nodes

let test_unreachable_block () =
  (* a block behind a constant-false guard still builds: addresses, CFG
     edges and postdominators all present *)
  let p =
    program ~name:"dead" ~entry:"main"
      [
        func "main"
          [ if_ (i 0 ==. i 1) [ fsync; compute (i 9) ] []; compute (i 1); ret_void ];
      ]
  in
  let main = Ast.find_func p "main" in
  let g = Cfg.of_func main in
  check Alcotest.int "guard is a branch node" 1 (List.length (Cfg.branch_nodes g));
  ignore (Postdom.compute g)

let test_config_read_without_predicate () =
  (* a config value read into a local that never reaches a predicate: the
     read is recorded, no branch depends on it *)
  let p =
    program ~name:"readonly" ~entry:"main"
      [ func "main" [ set "x" (cfg "knob"); compute (lv "x"); ret_void ] ]
  in
  let main = Ast.find_func p "main" in
  let reads = ref [] in
  Ast.iter_stmts
    (function
      | Ast.Assign (_, value) -> reads := Ast.config_reads value @ !reads
      | _ -> ())
    (Ast.func_body main);
  check (Alcotest.list Alcotest.string) "config read recorded" [ "knob" ] !reads;
  let g = Cfg.of_func main in
  check Alcotest.int "no branching" 0 (List.length (Cfg.branch_nodes g))

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  n = 0 || go 0

let test_pretty_renders () =
  let text = Fmt.str "%a" Vir.Pretty.pp_program simple_program in
  check Alcotest.bool "mentions funcs" true
    (List.for_all (contains text) [ "main"; "helper"; "compute" ])

let tests =
  [
    tc "addresses distinct" test_addresses_distinct;
    tc "return addresses in caller range" test_ret_addrs_in_caller_range;
    tc "builder validation" test_builder_validation;
    tc "config/workload reads" test_reads;
    tc "cfg diamond" test_cfg_diamond;
    tc "cfg while" test_cfg_while;
    tc "cfg return cuts flow" test_cfg_return_cuts_flow;
    tc "postdominators diamond" test_postdom_diamond;
    tc "callgraph" test_callgraph;
    tc "callgraph cycles" test_callgraph_cycles;
    tc "pretty renders" test_pretty_renders;
    tc "branchless function" test_branchless_function;
    tc "unreachable block" test_unreachable_block;
    tc "config read without predicate" test_config_read_without_predicate;
  ]
