(* Tests for vinc: the persistent cross-run solver cache's on-disk format
   (QCheck round-trip through Cache_store plus truncation/bit-flip
   rejection regressions), the IR differ's content keys, the splice
   engine's reuse/identity contract, and the pipeline's warm-cache path. *)

module E = Vsmt.Expr
module Cache = Vsched.Solver_cache
module Store = Vsched.Cache_store
module P = Violet.Pipeline
module G = Vfuzz.Genspec
module B = Vinc.Baseline

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

let var name lo hi = E.{ name; dom = Vsmt.Dom.int_range lo hi; origin = Config }
let qa = var "qa" 0 7
let qb = var "qb" 0 7

let temp_path () =
  let p = Filename.temp_file "vinc_cache" ".vcache" in
  Sys.remove p;
  p

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      try Sys.rmdir path with Sys_error _ -> ()
    end
    else try Sys.remove path with Sys_error _ -> ()

let temp_dir name =
  let d = Filename.concat (Filename.get_temp_dir_name ()) ("vinc_test_" ^ name) in
  rm_rf d;
  d

(* ------------------------------------------------------------------ *)
(* Cache_store: disk round-trip                                        *)
(* ------------------------------------------------------------------ *)

let atom_gen =
  QCheck2.Gen.(
    let open E in
    let v = oneofl [ qa; qb ] in
    let cmp = oneofl [ ( ==. ); ( <>. ); ( <. ); ( >. ); ( <=. ); ( >=. ) ] in
    v >>= fun x ->
    cmp >>= fun op ->
    int_range 0 8 >>= fun k -> return (op (of_var x) (const k)))

let queries_gen = QCheck2.Gen.(list_size (int_range 1 8) (list_size (int_range 1 4) atom_gen))

let prop_store_roundtrip =
  QCheck2.Test.make ~name:"dump/prime round-trips through the on-disk format" ~count:60
    queries_gen (fun queries ->
      let c1 = Cache.create () in
      let before = List.map (Cache.check_model c1 ~max_nodes:4_000) queries in
      List.iter (fun q -> ignore (Cache.is_feasible c1 ~max_nodes:4_000 q)) queries;
      let path = temp_path () in
      let ok =
        match Store.save ~path (Cache.dump c1) with
        | Error e -> failwith (Vresilience.Checkpoint.error_to_string e)
        | Ok () -> (
          match Store.load ~path with
          | Error e -> failwith (Vresilience.Checkpoint.error_to_string e)
          | Ok d ->
            (* the restored cache must answer every query exactly as the
               original did, from memo entries alone (no new solves; the
               restored counters start at the dump's totals, so compare
               the miss delta) *)
            let c2 = Cache.restore d in
            let misses0 = (Cache.stats c2).Cache.misses in
            let after = List.map (Cache.check_model c2 ~max_nodes:4_000) queries in
            let s = Cache.stats c2 in
            Cache.dump_entries d = Cache.dump_entries (Cache.dump c1)
            && before = after
            && s.Cache.misses = misses0)
      in
      Sys.remove path;
      ok)

let populated_dump () =
  let c = Cache.create () in
  let sets =
    E.
      [
        [ of_var qa ==. const 1 ];
        [ of_var qa >. const 2; of_var qa <. const 6 ];
        [ of_var qb ==. const 3 ];
        [ of_var qb >. const 5; of_var qb <. const 3 ];
        [ of_var qa ==. const 1; of_var qb ==. const 3 ];
      ]
  in
  List.iter
    (fun cs ->
      ignore (Cache.check_model c ~max_nodes:4_000 cs);
      ignore (Cache.is_feasible c ~max_nodes:4_000 cs))
    sets;
  Cache.dump c

(* regression: a file cut short at any point must come back as a typed
   error, never a crash or a silently half-primed cache *)
let test_truncated_rejected () =
  let path = temp_path () in
  (match Store.save ~path (populated_dump ()) with
  | Ok () -> ()
  | Error e -> failwith (Vresilience.Checkpoint.error_to_string e));
  let full = In_channel.with_open_bin path In_channel.input_all in
  List.iter
    (fun keep ->
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc (String.sub full 0 keep));
      match Store.load ~path with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "load accepted a file truncated to %d bytes" keep)
    [ 0; 4; String.length full / 2; String.length full - 1 ];
  Sys.remove path

(* regression: a flipped payload byte must fail the envelope checksum *)
let test_bitflip_rejected () =
  let path = temp_path () in
  (match Store.save ~path (populated_dump ()) with
  | Ok () -> ()
  | Error e -> failwith (Vresilience.Checkpoint.error_to_string e));
  let full = Bytes.of_string (In_channel.with_open_bin path In_channel.input_all) in
  let i = Bytes.length full - 7 in
  Bytes.set full i (Char.chr (Char.code (Bytes.get full i) lxor 0x40));
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_bytes oc full);
  (match Store.load ~path with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "load accepted a bit-flipped file");
  (* the pipeline-facing wrapper degrades to a cold start the same way *)
  (match Store.load_filtered ~path ~dirty:[] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "load_filtered accepted a bit-flipped file");
  Sys.remove path

let test_filter_dump () =
  let d = populated_dump () in
  let all = Cache.dump_entries d in
  check Alcotest.bool "dump has entries" true (all > 0);
  (* counters zero even with nothing dirty: a cross-run dump must not carry
     last run's totals into the next run's stats *)
  let clean = Cache.filter_dump d ~dirty:[] in
  check Alcotest.int "no entries dropped when nothing is dirty" all (Cache.dump_entries clean);
  let s = Cache.stats (Cache.restore clean) in
  check Alcotest.int "counters zeroed" 0 (s.Cache.lookups + s.Cache.misses + Cache.hits s);
  (* footprint scoping: entries mentioning the dirty symbol are dropped,
     entries on the untouched symbol survive *)
  let filtered = Cache.filter_dump d ~dirty:[ "qa" ] in
  let kept = Cache.dump_entries filtered in
  check Alcotest.bool "dirty entries dropped" true (kept < all);
  check Alcotest.bool "clean entries kept" true (kept > 0);
  let c = Cache.restore filtered in
  ignore (Cache.check_model c ~max_nodes:4_000 E.[ of_var qb ==. const 3 ]);
  ignore (Cache.check_model c ~max_nodes:4_000 E.[ of_var qa ==. const 1 ]);
  let s = Cache.stats c in
  check Alcotest.int "qb replays from the filtered dump" 1 s.Cache.exact_hits;
  check Alcotest.int "qa re-solves" 1 s.Cache.misses

(* ------------------------------------------------------------------ *)
(* A tiny spec family for differ and splice tests                      *)
(* ------------------------------------------------------------------ *)

(* root gates helper_i behind opt_i (default off), so the slice for opt_i
   dynamically covers only its own helper — the shape that makes a
   one-function diff selective *)
let n_params = 4

let spec_with ~tweak =
  let helper i =
    {
      G.f_name = Printf.sprintf "helper%d" i;
      f_body =
        [
          G.S_op G.O_cache_lookup;
          G.S_op (G.O_compute (if i = tweak then 97 else 8 + i));
          G.S_op (G.O_buffered_write 512);
        ];
    }
  in
  let root =
    {
      G.f_name = "root";
      f_body =
        List.init n_params (fun i ->
            G.S_if
              ( [ G.A_cfg (Printf.sprintf "opt%d" i, E.Eq, 1) ],
                [ G.S_call (Printf.sprintf "helper%d" i) ],
                [ G.S_op (G.O_compute 4) ] ));
    }
  in
  let t =
    {
      G.g_name = "vinc-fixture";
      g_seed = 0;
      g_cparams =
        List.init n_params (fun i ->
            { G.c_name = Printf.sprintf "opt%d" i; c_kind = G.C_bool; c_default = 0 });
      g_wparams = [];
      g_funcs = root :: List.init n_params helper;
      g_plants = [];
      g_decoys = [];
      g_trail = [];
    }
  in
  match G.validate t with Ok () -> t | Error e -> failwith e

let v1 = spec_with ~tweak:(-1)
let v2 = spec_with ~tweak:2 (* helper2's body changes, nothing else *)

let opts =
  {
    P.default_options with
    P.budget = Vresilience.Budget.with_max_states Vresilience.Budget.default 256;
    cache_dir = None;
  }

(* ------------------------------------------------------------------ *)
(* Irdiff                                                              *)
(* ------------------------------------------------------------------ *)

let test_irdiff_classification () =
  let p1 = (G.to_target v1).P.program in
  let p2 = (G.to_target v2).P.program in
  let d = Vinc.Irdiff.diff_programs ~old_program:p1 p2 in
  check (Alcotest.list Alcotest.string) "modified" [ "helper2" ] d.Vinc.Irdiff.modified;
  check (Alcotest.list Alcotest.string) "added" [] d.Vinc.Irdiff.added;
  check (Alcotest.list Alcotest.string) "removed" [] d.Vinc.Irdiff.removed;
  check Alcotest.bool "everything else unchanged" true
    (List.length d.Vinc.Irdiff.unchanged = List.length p1.Vir.Ast.funcs - 1);
  check (Alcotest.list Alcotest.string) "dirty functions" [ "helper2" ]
    (Vinc.Irdiff.dirty_functions d);
  (* a self-diff is fully unchanged *)
  let self = Vinc.Irdiff.diff_programs ~old_program:p1 p1 in
  check Alcotest.bool "self-diff clean" true
    (self.Vinc.Irdiff.modified = [] && self.Vinc.Irdiff.added = [] && self.Vinc.Irdiff.removed = [])

(* content keys must not move when synthetic addresses shift wholesale:
   growing an early function re-addresses everything after it, but only
   the grown function's key may change *)
let test_irdiff_addr_insensitive () =
  let grown =
    {
      v1 with
      G.g_funcs =
        List.map
          (fun (f : G.fspec) ->
            if f.G.f_name = "root" then
              { f with G.f_body = (G.S_op (G.O_malloc 64) :: f.G.f_body) }
            else f)
          v1.G.g_funcs;
    }
  in
  let d =
    Vinc.Irdiff.diff_programs ~old_program:(G.to_target v1).P.program
      (G.to_target grown).P.program
  in
  check (Alcotest.list Alcotest.string) "only the grown function differs" [ "root" ]
    d.Vinc.Irdiff.modified

let test_dirty_symbols () =
  let p2 = (G.to_target v2).P.program in
  let d = Vinc.Irdiff.diff_programs ~old_program:(G.to_target v1).P.program p2 in
  (* helper2 reads no config directly; its dirty symbols are whatever the
     lowering threads through it, and must at least not mention the
     parameters whose code is untouched *)
  let syms = Vinc.Irdiff.dirty_symbols d p2 in
  check Alcotest.bool "untouched parameters not dirtied" true
    (not (List.mem "opt0" syms) && not (List.mem "opt1" syms) && not (List.mem "opt3" syms))

(* ------------------------------------------------------------------ *)
(* Baseline + splice                                                   *)
(* ------------------------------------------------------------------ *)

let test_splice_reuse_and_identity () =
  let old_t = G.to_target v1 and new_t = G.to_target v2 in
  let base = temp_dir "base" and out = temp_dir "spliced" and scratch = temp_dir "scratch" in
  let mf_old, _ =
    match B.build ~opts ~dir:base old_t with Ok r -> r | Error e -> failwith e
  in
  let r =
    match Vinc.Splice.run ~opts ~baseline:base ~out new_t with
    | Ok r -> r
    | Error e -> failwith e
  in
  check Alcotest.(list string) "only opt2's slice re-explored" [ "opt2" ]
    (List.map fst r.Vinc.Splice.sp_reexplored);
  check Alcotest.int "every other slice carried" (n_params - 1)
    (List.length r.Vinc.Splice.sp_reused);
  check Alcotest.bool "no conservative fallback" true (r.Vinc.Splice.sp_conservative = None);
  (* spliced output must be indistinguishable from scratch by content... *)
  let scratch_mf, _ =
    match B.build ~opts ~dir:scratch new_t with Ok r -> r | Error e -> failwith e
  in
  let digests (mf : B.t) =
    List.map (fun (s : B.slice) -> (s.B.sl_param, s.B.sl_digest)) mf.B.mf_slices
  in
  check
    Alcotest.(list (pair string string))
    "spliced models byte-identical to scratch" (digests scratch_mf)
    (digests r.Vinc.Splice.sp_baseline);
  (* ...except by provenance, which records the splice and its parent *)
  (match r.Vinc.Splice.sp_baseline.B.mf_provenance with
  | B.Spliced { parent; reused; reexplored } ->
    check Alcotest.string "parent is the donor baseline" (B.digest mf_old) parent;
    check Alcotest.int "reused recorded" (n_params - 1) reused;
    check Alcotest.int "reexplored recorded" 1 reexplored
  | B.Scratch -> Alcotest.fail "spliced manifest lost its provenance");
  check Alcotest.bool "scratch manifest says scratch" true
    (scratch_mf.B.mf_provenance = B.Scratch);
  (* carried slices are marked, and the manifest on disk round-trips *)
  let reloaded = match B.load ~dir:out with Ok t -> t | Error e -> failwith e in
  List.iter
    (fun (s : B.slice) ->
      let expect = if s.B.sl_param = "opt2" then B.Fresh_slice else B.Carried in
      check Alcotest.bool (s.B.sl_param ^ " origin") true (s.B.sl_origin = expect))
    reloaded.B.mf_slices;
  (* upgrade findings through the spliced baseline equal the scratch path *)
  let findings dir =
    match Vinc.Splice.check_upgrade ~old_dir:base ~new_dir:dir with
    | Error e -> failwith e
    | Ok rs -> List.map (fun (p, (r : Vchecker.Checker.report)) -> (p, r.Vchecker.Checker.findings)) rs
  in
  check Alcotest.bool "upgrade verdicts identical" true (findings out = findings scratch);
  List.iter rm_rf [ base; out; scratch ]

let test_splice_conservative_on_options_change () =
  let old_t = G.to_target v1 in
  let base = temp_dir "copts_base" and out = temp_dir "copts_out" in
  (match B.build ~opts ~dir:base old_t with Ok _ -> () | Error e -> failwith e);
  let other = { opts with P.threshold = opts.P.threshold *. 2. } in
  let r =
    match Vinc.Splice.run ~opts:other ~baseline:base ~out old_t with
    | Ok r -> r
    | Error e -> failwith e
  in
  check Alcotest.bool "whole baseline invalidated" true
    (r.Vinc.Splice.sp_conservative <> None);
  check Alcotest.int "nothing carried" 0 (List.length r.Vinc.Splice.sp_reused);
  List.iter rm_rf [ base; out ]

let test_upgrade_digest_short_circuit () =
  let model = (P.analyze_exn ~opts (G.to_target v1) "opt0").P.model in
  let d = B.model_digest model in
  let r = Vchecker.Checker.check_upgrade ~old_digest:d ~new_digest:d ~old_model:model ~new_model:model () in
  check Alcotest.int "equal digests short-circuit to no findings" 0
    (List.length r.Vchecker.Checker.findings)

(* ------------------------------------------------------------------ *)
(* Pipeline warm-cache path                                            *)
(* ------------------------------------------------------------------ *)

let test_pipeline_cache_warm_run () =
  let target = G.to_target v1 in
  let cache = temp_dir "pipe_cache" in
  let copts = { opts with P.cache_dir = Some cache } in
  let solves (a : P.analysis) =
    a.P.result.Vsymexec.Executor.sched.Vsched.Exploration_stats.solver_solves
  in
  let cold =
    match P.analyze ~opts:copts target "opt1" with
    | Ok a -> a
    | Error e -> failwith (P.error_to_string e)
  in
  check Alcotest.int "cold run primes nothing" 0 cold.P.cache_primed;
  check Alcotest.bool "cold run solves" true (solves cold > 0);
  let warm =
    match P.analyze ~opts:copts target "opt1" with
    | Ok a -> a
    | Error e -> failwith (P.error_to_string e)
  in
  check Alcotest.bool "warm run primes entries" true (warm.P.cache_primed > 0);
  check Alcotest.bool "warm run solves less" true (solves warm < solves cold);
  check Alcotest.string "warm model byte-identical" (B.model_digest cold.P.model)
    (B.model_digest warm.P.model);
  (* a corrupt cache file is a cold start, never an error *)
  let path = Vsched.Cache_store.file ~dir:cache ~system:target.P.name ~param:"opt1" in
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc "garbage");
  (match P.analyze ~opts:copts target "opt1" with
  | Ok a -> check Alcotest.int "corrupt file primes nothing" 0 a.P.cache_primed
  | Error e -> failwith (P.error_to_string e));
  rm_rf cache

let tests =
  [
    QCheck_alcotest.to_alcotest prop_store_roundtrip;
    tc "truncated cache file rejected" test_truncated_rejected;
    tc "bit-flipped cache file rejected" test_bitflip_rejected;
    tc "filter_dump scopes by footprint and zeroes counters" test_filter_dump;
    tc "irdiff classifies a one-function change" test_irdiff_classification;
    tc "irdiff keys ignore synthetic addresses" test_irdiff_addr_insensitive;
    tc "dirty symbols exclude untouched parameters" test_dirty_symbols;
    tc "splice reuses clean slices, matches scratch" test_splice_reuse_and_identity;
    tc "splice is conservative on an options change" test_splice_conservative_on_options_change;
    tc "upgrade check short-circuits on equal digests" test_upgrade_digest_short_circuit;
    tc "pipeline warm cache cuts solves, keeps bytes" test_pipeline_cache_warm_run;
  ]
