(* Tests for the independence-slicing layer (DESIGN.md Section 5f):
   footprint and partition primitives, the headline soundness/determinism
   properties — sliced verdicts match full-query verdicts, composed
   per-slice models satisfy the full conjunction, and the end-to-end impact
   model is byte-identical with slicing on or off at any job count — plus
   the footprint-tagged Unknown-reclaim regression and the bounded-memo
   contracts of the expression-level caches. *)

module E = Vsmt.Expr
module F = Vsmt.Footprint
module P = Vsmt.Partition
module Solver = Vsmt.Solver
module Cache = Vsched.Solver_cache
open Vir.Builder

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f
let qt = QCheck_alcotest.to_alcotest

let cvar name lo hi = E.{ name; dom = Vsmt.Dom.int_range lo hi; origin = Config }
let wvar name lo hi = E.{ name; dom = Vsmt.Dom.int_range lo hi; origin = Workload }
let qa = cvar "qa" 0 1
let qb = cvar "qb" 0 7
let qc = cvar "qc" 0 7
let wk = wvar "wk" 0 7

(* ------------------------------------------------------------------ *)
(* Footprint                                                           *)
(* ------------------------------------------------------------------ *)

let test_footprint_of_expr () =
  let f = F.of_expr E.(binop Add (of_var qa) (of_var qb) >. const 3) in
  check Alcotest.int "two symbols" 2 (F.cardinal f);
  check Alcotest.(list string) "sorted names" [ "qa"; "qb" ] (F.names f);
  check Alcotest.bool "const is empty" true (F.is_empty (F.of_expr (E.const 5)));
  (* memoized per hash-consed node: same node, same (physical) footprint *)
  let e = E.(of_var qc <. const 4) in
  check Alcotest.bool "memo hit is physical" true (F.of_expr e == F.of_expr e)

let test_footprint_set_ops () =
  let fa = F.of_expr E.(of_var qa ==. const 1) in
  let fb = F.of_expr E.(of_var qb >. const 2) in
  let fab = F.of_expr E.(of_var qa +. of_var qb ==. const 3) in
  check Alcotest.bool "disjoint" false (F.overlaps fa fb);
  check Alcotest.bool "overlap" true (F.overlaps fa fab);
  check Alcotest.bool "union equals joint" true (F.equal (F.union fa fb) fab);
  check Alcotest.(list string) "union names" [ "qa"; "qb" ] (F.names (F.union fa fb));
  check Alcotest.bool "subset" true (F.subset fa fab);
  check Alcotest.bool "not subset" false (F.subset fab fa);
  check Alcotest.bool "empty subset of all" true (F.subset F.empty fa)

let test_footprint_origins () =
  let f = F.of_list E.[ of_var qa ==. const 1; of_var wk >. const 2 ] in
  check Alcotest.bool "has config" true (F.exists_origin E.Config f);
  check Alcotest.bool "has workload" true (F.exists_origin E.Workload f);
  check Alcotest.bool "not all workload" false (F.for_all_origin E.Workload f);
  let fw = F.of_expr E.(of_var wk <. const 5) in
  check Alcotest.bool "all workload" true (F.for_all_origin E.Workload fw)

let test_footprint_memo_bounded () =
  F.set_memo_cap 1024;
  Fun.protect
    ~finally:(fun () -> F.set_memo_cap (1 lsl 17))
    (fun () ->
      for k = 0 to 2_999 do
        ignore (F.of_expr E.(of_var qb +. const (k * 16) >. const k))
      done;
      check Alcotest.bool "memo stays within cap" true (F.memo_size () <= 1024);
      F.clear_memo ();
      check Alcotest.int "clear empties" 0 (F.memo_size ()))

(* ------------------------------------------------------------------ *)
(* Partition                                                           *)
(* ------------------------------------------------------------------ *)

let slice_ids part = List.map (fun (cs, _) -> List.map E.id cs) (P.slices part)

let test_partition_disjoint_and_merge () =
  let a = E.(of_var qa ==. const 1) in
  let b = E.(of_var qb >. const 2) in
  let mix = E.(of_var qa +. of_var qb <. const 6) in
  let p2 = P.of_list [ a; b ] in
  check Alcotest.int "two disjoint slices" 2 (P.n_slices p2);
  check Alcotest.int "count" 2 (P.count p2);
  let p1 = P.of_list [ a; b; mix ] in
  check Alcotest.int "bridge constraint merges" 1 (P.n_slices p1);
  (* canonical slice order = earliest constraint position *)
  check
    Alcotest.(list (list int))
    "slices keep path order"
    [ [ E.id a ]; [ E.id b ] ]
    (slice_ids p2)

let test_partition_extend_matches_rebuild () =
  let cs =
    E.[
      of_var qa ==. const 1;
      of_var qb >. const 2;
      of_var wk <. const 5;
      of_var qb <. const 7;
    ]
  in
  let rec prefixes acc = function
    | [] -> List.rev acc
    | c :: rest ->
      let prev = match acc with [] -> [] | p :: _ -> p in
      prefixes ((prev @ [ c ]) :: acc) rest
  in
  ignore
    (List.fold_left
       (fun part pfx ->
         let part = P.extend part pfx in
         check
           Alcotest.(list (list int))
           "incremental = rebuild" (slice_ids (P.of_list pfx)) (slice_ids part);
         part)
       P.empty (prefixes [] cs))

let test_partition_relevant () =
  let a = E.(of_var qa ==. const 1) in
  let b = E.(of_var qb >. const 2) in
  let w = E.(of_var wk <. const 5) in
  let part = P.of_list [ a; b; w ] in
  check
    Alcotest.(list int)
    "only the touching slice" [ E.id a ]
    (List.map E.id (P.relevant part (F.of_expr E.(of_var qa <>. const 0))));
  check
    Alcotest.(list int)
    "two touching slices, path order" [ E.id a; E.id w ]
    (List.map E.id (P.relevant part (F.of_list E.[ of_var qa ==. const 0; of_var wk ==. const 1 ])));
  check
    Alcotest.(list int)
    "foreign symbol touches nothing" []
    (List.map E.id (P.relevant part (F.of_expr E.(of_var qc ==. const 3))))

let test_partition_falsified () =
  let part = P.of_list E.[ of_var qa ==. const 1; fls ] in
  check Alcotest.bool "falsified" true (P.falsified part);
  check
    Alcotest.(list int)
    "relevant collapses to false" [ E.id E.fls ]
    (List.map E.id (P.relevant part (F.of_expr E.(of_var qb ==. const 0))));
  (* trivially-true constants are dropped, not sliced ([count] still
     counts source positions, so it stays 2) *)
  let part = P.of_list E.[ tru; of_var qb >. const 1 ] in
  check Alcotest.int "true dropped from slices" 1 (P.n_slices part);
  check Alcotest.int "source positions counted" 2 (P.count part);
  check Alcotest.bool "clean" true (P.clean part)

(* ------------------------------------------------------------------ *)
(* Properties: sliced solving is sound and deterministic               *)
(* ------------------------------------------------------------------ *)

let atom_gen =
  QCheck2.Gen.(
    let open E in
    let v = oneofl [ qa; qb; qc; wk ] in
    let cmp = oneofl [ ( ==. ); ( <>. ); ( <. ); ( >. ); ( <=. ); ( >=. ) ] in
    oneof
      [
        (v >>= fun x -> cmp >>= fun op -> int_range 0 8 >>= fun k ->
         return (op (of_var x) (const k)));
        (v >>= fun x -> v >>= fun y -> cmp >>= fun op -> int_range 0 12 >>= fun k ->
         return (op (binop Add (of_var x) (of_var y)) (const k)));
      ])

let query_gen = QCheck2.Gen.(list_size (int_range 0 6) atom_gen)

let is_sat = function Solver.Sat _ -> true | Solver.Unsat | Solver.Unknown -> false

(* The domains are tiny, so a 4k-node budget is decisive: no Unknowns, and
   the per-slice/full-query verdicts must agree exactly. *)
let prop_sliced_verdict_matches_full =
  QCheck2.Test.make ~name:"per-slice verdicts compose to the full-query verdict"
    ~count:300 query_gen (fun cs ->
      let full = is_sat (Solver.check ~max_nodes:4_000 cs) in
      let part = P.of_list cs in
      let sliced =
        (not (P.falsified part))
        && List.for_all
             (fun (slice, _) -> is_sat (Solver.check ~max_nodes:4_000 slice))
             (P.slices part)
      in
      full = sliced)

let prop_composed_model_satisfies_conjunction =
  QCheck2.Test.make ~name:"composed per-slice models satisfy the full conjunction"
    ~count:300 query_gen (fun cs ->
      let part = P.of_list cs in
      if P.falsified part then true
      else begin
        let per_slice =
          List.map (fun (slice, _) -> Solver.check ~max_nodes:4_000 slice) (P.slices part)
        in
        if List.exists (fun r -> not (is_sat r)) per_slice then true
        else begin
          let model =
            List.concat_map
              (function Solver.Sat m -> m | Solver.Unsat | Solver.Unknown -> [])
              per_slice
            |> List.sort (fun (a, _) (b, _) -> String.compare a b)
          in
          let vars = List.sort_uniq compare (List.concat_map E.vars cs) in
          let model = Solver.complete ~vars model in
          List.for_all (fun c -> Solver.eval_in model c = Some 1) cs
        end
      end)

(* ------------------------------------------------------------------ *)
(* End-to-end: impact model byte-identical, slicing on/off x jobs 1/4  *)
(* ------------------------------------------------------------------ *)

let registry =
  Vruntime.Config_registry.(
    make ~system:"slice"
      [
        param_bool "a" ~default:false "flag a";
        param_int "n" ~lo:0 ~hi:7 ~default:3 "small int";
      ])

let workload =
  Vruntime.Workload.(
    template "w" [ wparam_enum "k" ~values:[ "X"; "Y"; "Z" ] "kind" ])

let cond_gen =
  QCheck2.Gen.oneofl
    [
      cfg "n" >. i 4;
      cfg "n" <. i 2;
      wl "k" ==. i 1;
      (cfg "n" <. i 3) ||. (wl "k" ==. i 2);
      (cfg "a" ==. i 0) &&. (cfg "n" >=. i 2);
      cfg "n" %. i 2 ==. i 0;
    ]

let prim_gen =
  QCheck2.Gen.oneofl
    [ fsync; compute (i 50); buffered_write (i 1024); net_send (i 128) ]

let block_gen =
  QCheck2.Gen.(
    let leaf = oneof [ prim_gen; return (call "helper" []) ] in
    let rec block depth =
      let stmt =
        if depth = 0 then leaf
        else
          oneof
            [
              leaf;
              (cond_gen >>= fun c ->
               block (depth - 1) >>= fun t ->
               block (depth - 1) >>= fun e -> return (if_ c t e));
            ]
      in
      list_size (int_range 1 3) stmt
    in
    block 2)

let program_gen =
  QCheck2.Gen.(
    block_gen >>= fun then_block ->
    block_gen >>= fun else_block ->
    return
      (program ~name:"gen" ~entry:"main"
         [
           func "main" [ if_ (cfg "a" ==. i 1) then_block else_block; ret_void ];
           func "helper" [ compute (i 20); fsync; ret_void ];
         ]))

let model_for ~slice ~jobs program =
  let target =
    { Violet.Pipeline.name = "slice"; program; registry; workloads = [ workload ] }
  in
  let opts =
    (* byte-identity is the property under test: pin fast-nondet off even
       when VIOLET_FAST_NONDET is exported (the CI smoke does) *)
    { Violet.Pipeline.default_options with Violet.Pipeline.slice; jobs; fast_nondet = false }
  in
  match Violet.Pipeline.analyze ~opts target "a" with
  | Ok a ->
    Vmodel.Impact_model.to_string
      { a.Violet.Pipeline.model with Vmodel.Impact_model.analysis_wall_s = 0. }
  | Error e -> "error: " ^ Violet.Pipeline.error_to_string e

let prop_slice_model_identity =
  QCheck2.Test.make
    ~name:"impact model byte-identical: slicing on/off x jobs 1/4" ~count:15
    program_gen (fun program ->
      let reference = model_for ~slice:false ~jobs:1 program in
      String.equal reference (model_for ~slice:true ~jobs:1 program)
      && String.equal reference (model_for ~slice:true ~jobs:4 program)
      && String.equal reference (model_for ~slice:false ~jobs:4 program))

(* ------------------------------------------------------------------ *)
(* Unknown-reclaim regression (footprint-tagged cache entries)         *)
(* ------------------------------------------------------------------ *)

(* [x + y = 999999 && x > 10] over a million-value domain needs at least one
   branching step, so a 1-node budget returns Unknown while 4k nodes decide
   Sat — the budget-bound query shape the reclaim targets. *)
let test_unknown_purge_is_footprint_scoped () =
  let x = cvar "px" 0 1_000_000 in
  let y = cvar "py" 0 1_000_000 in
  let u = cvar "pu" 0 1_000_000 in
  let v = cvar "pv" 0 1_000_000 in
  let hard a b =
    E.[ binop Add (of_var a) (of_var b) ==. const 999_999; of_var a >. const 10 ]
  in
  let cache = Cache.create () in
  let qx = hard x y and qu = hard u v in
  (* a second Unknown over the same symbols as A — the stale hint the
     decided re-solve should reclaim *)
  let qx' = E.[ binop Add (of_var x) (of_var y) ==. const 999_999 ] in
  (* all three queries Unknown at the tiny budget; all entries recorded *)
  check Alcotest.bool "A unknown at tiny budget" true
    (Cache.check_model cache ~max_nodes:1 qx = Solver.Unknown);
  check Alcotest.bool "A' unknown at tiny budget" true
    (Cache.check_model cache ~max_nodes:1 qx' = Solver.Unknown);
  check Alcotest.bool "B unknown at tiny budget" true
    (Cache.check_model cache ~max_nodes:1 qu = Solver.Unknown);
  (* decisive re-solve of A purges A''s stale Unknown (footprint {px,py}
     inside A's) but must not touch B: {pu,pv} is not a subset of {px,py} *)
  check Alcotest.bool "A decides at full budget" true
    (is_sat (Cache.check_model cache ~max_nodes:4_000 qx));
  let s = Cache.stats cache in
  check Alcotest.bool "stale unknown reclaimed" true (s.Cache.unknown_purged >= 1);
  let before = (Cache.stats cache).Cache.exact_hits in
  check Alcotest.bool "B still cached" true
    (Cache.check_model cache ~max_nodes:1 qu = Solver.Unknown);
  check Alcotest.int "B served as an exact hit" (before + 1)
    (Cache.stats cache).Cache.exact_hits

(* ------------------------------------------------------------------ *)
(* Bounded memo tables (PR 3 follow-up) + telemetry surfacing          *)
(* ------------------------------------------------------------------ *)

let test_simplify_memo_bounded () =
  Vsmt.Simplify.set_memo_cap 1024;
  Fun.protect
    ~finally:(fun () -> Vsmt.Simplify.set_memo_cap (1 lsl 18))
    (fun () ->
      for k = 0 to 2_999 do
        ignore (Vsmt.Simplify.simplify E.(of_var qb +. const (k * 32) >. const (k + 1)))
      done;
      check Alcotest.bool "memo stays within cap" true
        (Vsmt.Simplify.memo_size () <= 1024);
      Vsmt.Simplify.clear_memo ();
      check Alcotest.int "clear empties" 0 (Vsmt.Simplify.memo_size ()))

let test_rendered_strings_clearable () =
  let e = E.(of_var qa +. of_var qb >. const (1234 * 3)) in
  ignore (E.to_string e);
  check Alcotest.bool "rendered strings counted" true (E.rendered_count () >= 1);
  E.clear_rendered ();
  check Alcotest.int "cleared" 0 (E.rendered_count ());
  (* re-rendering after a clear reproduces the same text *)
  check Alcotest.bool "re-render intact" true (String.length (E.to_string e) > 0)

let test_memo_sizes_in_stats () =
  let target =
    {
      Violet.Pipeline.name = "slice";
      program =
        program ~name:"gen" ~entry:"main"
          [ func "main" [ if_ (cfg "a" ==. i 1) [ fsync ] [ compute (i 5) ]; ret_void ] ];
      registry;
      workloads = [ workload ];
    }
  in
  match Violet.Pipeline.analyze ~opts:Violet.Pipeline.default_options target "a" with
  | Error e -> Alcotest.fail (Violet.Pipeline.error_to_string e)
  | Ok a ->
    let sched = a.Violet.Pipeline.result.Vsymexec.Executor.sched in
    let ms = sched.Vsched.Exploration_stats.memo_sizes in
    List.iter
      (fun key ->
        match List.assoc_opt key ms with
        | Some n -> check Alcotest.bool (key ^ " reported") true (n >= 0)
        | None -> Alcotest.fail (key ^ " missing from memo_sizes"))
      [ "simplify_memo"; "footprint_memo"; "rendered_strings"; "interned_exprs" ];
    (* query-size telemetry flows end to end: something was sent, nothing
       more than the classical full queries *)
    let q = sched.Vsched.Exploration_stats.query_sizes in
    check Alcotest.bool "queries recorded" true
      (q.Vsched.Exploration_stats.pre_constraints > 0);
    check Alcotest.bool "sent <= pre" true
      (q.Vsched.Exploration_stats.sent_nodes <= q.Vsched.Exploration_stats.pre_nodes);
    let sum a = Array.fold_left ( + ) 0 a in
    check Alcotest.int "pre histogram counts every query"
      (sum q.Vsched.Exploration_stats.hist_pre)
      (sum q.Vsched.Exploration_stats.hist_sent)

let tests =
  [
    tc "footprint of_expr collects symbols" test_footprint_of_expr;
    tc "footprint set operations" test_footprint_set_ops;
    tc "footprint origin queries" test_footprint_origins;
    tc "footprint memo is bounded" test_footprint_memo_bounded;
    tc "partition: disjoint slices, bridging merge" test_partition_disjoint_and_merge;
    tc "partition: extend matches rebuild" test_partition_extend_matches_rebuild;
    tc "partition: relevant selects touching slices" test_partition_relevant;
    tc "partition: falsified and trivial constraints" test_partition_falsified;
    qt prop_sliced_verdict_matches_full;
    qt prop_composed_model_satisfies_conjunction;
    qt prop_slice_model_identity;
    tc "unknown reclaim is footprint-scoped" test_unknown_purge_is_footprint_scoped;
    tc "simplify memo is bounded" test_simplify_memo_bounded;
    tc "rendered strings clear and re-render" test_rendered_strings_clearable;
    tc "memo sizes and query sizes surface in telemetry" test_memo_sizes_in_stats;
  ]
