(* Tests for the resilience layer: unified budgets, checkpoint/resume,
   the graceful-degradation ladder, and the engine-fault chaos harness.
   The heavyweight properties here are the PR's acceptance criteria: a
   killed-and-resumed analysis produces a byte-identical impact model, and
   a chaotic run either succeeds, degrades-but-flags, or fails with a
   typed error — never an uncaught exception. *)

module B = Vresilience.Budget
module Ck = Vresilience.Checkpoint
module Ch = Vresilience.Chaos
module D = Vresilience.Degradation
module Ex = Vsymexec.Executor
module S = Vsymexec.Sym_state
module P = Violet.Pipeline
module M = Vmodel.Impact_model
module CF = Vchecker.Config_file
module Checker = Vchecker.Checker

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f
let stc name f = Alcotest.test_case name `Slow f

let tmp_path () =
  let path = Filename.temp_file "vresilience" ".ckpt" in
  Sys.remove path;
  path

let read_file path = In_channel.with_open_bin path In_channel.input_all

let write_file path s =
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc s)

let contains hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  ln = 0 || go 0

(* A clock that reads 0. for the first [after] samples, then jumps far past
   any deadline: lets a fixed amount of engine activity happen before the
   budget snaps shut, deterministically. *)
let jump_clock ~after ~to_ =
  let n = ref 0 in
  fun () ->
    incr n;
    if !n > after then to_ else 0.

(* The virtual clock used whenever two runs must produce byte-identical
   models: wall time is pinned to zero in both. *)
let frozen_budget = B.with_clock B.default (fun () -> 0.)

(* ------------------------------------------------------------------ *)
(* Budget                                                              *)
(* ------------------------------------------------------------------ *)

let test_budget_clock () =
  let now, advance = B.manual_clock () in
  let armed = B.arm (B.with_clock (B.with_deadline B.default (Some 10.)) now) in
  check Alcotest.bool "fresh not expired" false (B.expired armed);
  check (Alcotest.float 1e-6) "no pressure yet" 0. (B.pressure armed);
  advance 5.;
  check (Alcotest.float 1e-6) "half pressure" 0.5 (B.pressure armed);
  check Alcotest.bool "still live" false (B.expired armed);
  check (Alcotest.option (Alcotest.float 1e-6)) "remaining" (Some 5.) (B.remaining_s armed);
  advance 5.;
  check Alcotest.bool "expired at deadline" true (B.expired armed);
  check (Alcotest.float 1e-6) "pressure clamped" 1. (B.pressure armed);
  (* a deadline-free budget never expires *)
  let free = B.arm (B.with_clock B.default now) in
  advance 1e9;
  check Alcotest.bool "no deadline no expiry" false (B.expired free);
  check (Alcotest.float 1e-6) "no deadline no pressure" 0. (B.pressure free)

(* ------------------------------------------------------------------ *)
(* Checkpoint envelope                                                 *)
(* ------------------------------------------------------------------ *)

let test_checkpoint_roundtrip () =
  let path = tmp_path () in
  let payload = "binary\x00payload\xff with teeth" in
  (match Ck.write ~path ~kind:"test" ~version:3 payload with
  | Ok () -> ()
  | Error e -> Alcotest.fail (Ck.error_to_string e));
  (match Ck.read ~path ~kind:"test" ~version:3 with
  | Ok p -> check Alcotest.string "payload survives" payload p
  | Error e -> Alcotest.fail (Ck.error_to_string e));
  (match Ck.read ~path ~kind:"other" ~version:3 with
  | Error (Ck.Kind_mismatch _) -> ()
  | _ -> Alcotest.fail "wrong kind accepted");
  (match Ck.read ~path ~kind:"test" ~version:4 with
  | Error (Ck.Version_mismatch { expected = 4; found = 3 }) -> ()
  | _ -> Alcotest.fail "wrong version accepted");
  Sys.remove path;
  match Ck.read ~path ~kind:"test" ~version:3 with
  | Error (Ck.Io _) -> ()
  | _ -> Alcotest.fail "missing file accepted"

let test_checkpoint_damage () =
  let path = tmp_path () in
  (match Ck.write ~path ~kind:"test" ~version:1 (String.make 256 'x') with
  | Ok () -> ()
  | Error e -> Alcotest.fail (Ck.error_to_string e));
  let full = read_file path in
  (* a truncation at any point must come back as a typed error *)
  List.iter
    (fun len ->
      write_file path (String.sub full 0 len);
      match Ck.read ~path ~kind:"test" ~version:1 with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "truncation to %d bytes accepted" len)
    [ 0; 4; 12; String.length full / 2; String.length full - 1 ];
  (* a flipped payload byte fails the digest *)
  let flipped = Bytes.of_string full in
  let last = Bytes.length flipped - 1 in
  Bytes.set flipped last (Char.chr (Char.code (Bytes.get flipped last) lxor 0xff));
  write_file path (Bytes.to_string flipped);
  (match Ck.read ~path ~kind:"test" ~version:1 with
  | Error Ck.Corrupt -> ()
  | _ -> Alcotest.fail "bit flip accepted");
  (* not a checkpoint at all *)
  write_file path "[mysqld]\nautocommit = ON\n";
  (match Ck.read ~path ~kind:"test" ~version:1 with
  | Error Ck.Bad_magic -> ()
  | _ -> Alcotest.fail "garbage accepted");
  Sys.remove path

(* ------------------------------------------------------------------ *)
(* Chaos spec                                                          *)
(* ------------------------------------------------------------------ *)

let test_chaos_spec () =
  (match Ch.of_string "42" with
  | Ok c ->
    check Alcotest.int "seed" 42 c.Ch.seed;
    check (Alcotest.float 1e-9) "default solver mix" 0.05 c.Ch.solver_unknown_p;
    check (Alcotest.float 1e-9) "default truncate mix" 0.2 c.Ch.checkpoint_truncate_p
  | Error e -> Alcotest.fail e);
  (match Ch.of_string "7:0.5" with
  | Ok c ->
    check Alcotest.int "seed" 7 c.Ch.seed;
    check (Alcotest.float 1e-9) "uniform prob" 0.5 c.Ch.solver_unknown_p;
    check (Alcotest.float 1e-9) "uniform prob truncate" 0.5 c.Ch.checkpoint_truncate_p
  | Error e -> Alcotest.fail e);
  check Alcotest.bool "garbage rejected" true (Result.is_error (Ch.of_string "lots"));
  check Alcotest.bool "bad prob rejected" true (Result.is_error (Ch.of_string "1:x"));
  let c = Ch.make ~model_corrupt:1.0 ~seed:1 () in
  let s = "abcdefgh" in
  check Alcotest.bool "p=1 corrupts" true (Ch.corrupt_string c s <> s);
  check Alcotest.string "empty unchanged" "" (Ch.corrupt_string c "");
  let c0 = Ch.make ~seed:1 () in
  check Alcotest.string "p=0 identity" s (Ch.corrupt_string c0 s)

(* ------------------------------------------------------------------ *)
(* Degradation ladder                                                  *)
(* ------------------------------------------------------------------ *)

let test_degradation_ladder () =
  let rung = Alcotest.testable (Fmt.of_to_string D.rung_to_string) ( = ) in
  let ctl = D.controller D.default_policy in
  check rung "starts full" D.Full (D.current ctl);
  check Alcotest.int "below thresholds" 0
    (List.length (D.observe ctl ~pressure:0.3 ~step:1));
  let evs = D.observe ctl ~pressure:0.6 ~step:10 in
  check Alcotest.int "one escalation" 1 (List.length evs);
  check rung "reduced unroll" D.Reduced_unroll (D.current ctl);
  let evs = D.observe ctl ~pressure:0.9 ~step:20 in
  check Alcotest.int "pressure jump climbs two rungs" 2 (List.length evs);
  check rung "top rung" D.Drop_states (D.current ctl);
  check Alcotest.int "full history" 3 (List.length (D.events ctl));
  check Alcotest.int "monotone: never descends" 0
    (List.length (D.observe ctl ~pressure:0. ~step:30));
  (* resume path: restoring the history lands on the same rung *)
  let ctl2 = D.controller D.default_policy in
  D.restore ctl2 (D.events ctl);
  check rung "restored" D.Drop_states (D.current ctl2);
  (* a disabled policy never escalates *)
  let off = D.controller D.disabled in
  check Alcotest.int "disabled is silent" 0
    (List.length (D.observe off ~pressure:1. ~step:1));
  check rung "disabled stays full" D.Full (D.current off)

(* ------------------------------------------------------------------ *)
(* Solver deadline                                                     *)
(* ------------------------------------------------------------------ *)

let test_solver_deadline () =
  let now, advance = B.manual_clock () in
  let armed = B.arm (B.with_clock (B.with_deadline B.default (Some 1.)) now) in
  let x = Vsmt.Expr.{ name = "x"; dom = Vsmt.Dom.int_range 0 100; origin = Config } in
  (match Vsmt.Solver.check ~budget:armed Vsmt.Expr.[ of_var x >. const 3 ] with
  | Vsmt.Solver.Sat _ -> ()
  | Vsmt.Solver.Unsat | Vsmt.Solver.Unknown -> Alcotest.fail "sat expected before deadline");
  advance 2.;
  match Vsmt.Solver.check ~budget:armed Vsmt.Expr.[ of_var x >. const 3 ] with
  | Vsmt.Solver.Unknown -> ()
  | Vsmt.Solver.Sat _ | Vsmt.Solver.Unsat -> Alcotest.fail "expired budget must give Unknown"

(* ------------------------------------------------------------------ *)
(* Checkpoint/resume through the pipeline                              *)
(* ------------------------------------------------------------------ *)

let opts_with ?(budget = frozen_budget) ?checkpoint ?(resume = false) ?chaos () =
  { P.default_options with P.budget; checkpoint; resume; chaos }

let test_resume_byte_identical () =
  let path = tmp_path () in
  let opts ~resume =
    opts_with ~checkpoint:{ P.path; every_picks = 2 } ~resume ()
  in
  let full = P.analyze_exn ~opts:(opts ~resume:false) Fixtures.target "autocommit" in
  check Alcotest.bool "checkpoint written" true (Sys.file_exists path);
  let resumed = P.analyze_exn ~opts:(opts ~resume:true) Fixtures.target "autocommit" in
  check Alcotest.bool "resumed run is marked" true
    resumed.P.result.Ex.sched.Vsched.Exploration_stats.resumed;
  check Alcotest.string "resumed model is byte-identical"
    (M.to_string full.P.model) (M.to_string resumed.P.model);
  (* a damaged checkpoint surfaces as a typed error, not a crash *)
  let contents = read_file path in
  write_file path (String.sub contents 0 (String.length contents / 2));
  (match P.analyze ~opts:(opts ~resume:true) Fixtures.target "autocommit" with
  | Error (P.Checkpoint_failed _) -> ()
  | Ok _ -> Alcotest.fail "truncated checkpoint accepted"
  | Error e -> Alcotest.failf "wrong error: %s" (P.error_to_string e));
  (* resume without a configured checkpoint is a typed misuse error *)
  (match P.analyze ~opts:(opts_with ~resume:true ()) Fixtures.target "autocommit" with
  | Error (P.Engine_failure _) -> ()
  | Ok _ -> Alcotest.fail "resume without checkpoint accepted"
  | Error e -> Alcotest.failf "wrong error: %s" (P.error_to_string e));
  Sys.remove path

let test_kill9_resume_byte_identical () =
  (* OCaml 5 forbids Unix.fork once the runtime has gone multicore; if an
     earlier suite already spawned domains (e.g. VIOLET_JOBS > 1 made the
     pipeline parallel), only this fork-based harness is unavailable — the
     resume contract itself is covered by the in-process test above *)
  if Vpar.Pool.spawned_domains () then Alcotest.skip ();
  let path = tmp_path () in
  let opts ~resume =
    opts_with ~checkpoint:{ P.path; every_picks = 1 } ~resume ()
  in
  let baseline = P.analyze_exn ~opts:(opts ~resume:false) Fixtures.target "autocommit" in
  if Sys.file_exists path then Sys.remove path;
  (match Unix.fork () with
  | 0 ->
    (* the victim: re-run the analysis until SIGKILL lands mid-exploration *)
    (try
       while true do
         ignore (P.analyze ~opts:(opts ~resume:false) Fixtures.target "autocommit")
       done
     with _ -> ());
    Unix._exit 0
  | pid ->
    let give_up = Unix.gettimeofday () +. 60. in
    let rec wait_for_checkpoint () =
      if Unix.gettimeofday () > give_up then
        Alcotest.fail "victim never wrote a checkpoint"
      else if Sys.file_exists path && (Unix.stat path).Unix.st_size > 0 then ()
      else begin
        ignore (Unix.select [] [] [] 0.005);
        wait_for_checkpoint ()
      end
    in
    wait_for_checkpoint ();
    (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
    ignore (Unix.waitpid [] pid);
    check Alcotest.bool "checkpoint survived kill -9" true (Sys.file_exists path);
    let resumed = P.analyze_exn ~opts:(opts ~resume:true) Fixtures.target "autocommit" in
    check Alcotest.string "post-kill resume is byte-identical"
      (M.to_string baseline.P.model)
      (M.to_string resumed.P.model));
  if Sys.file_exists path then Sys.remove path

(* ------------------------------------------------------------------ *)
(* Deadline, degradation and telemetry                                 *)
(* ------------------------------------------------------------------ *)

(* How many times the uninterrupted fixture analysis samples the clock:
   calibrates where the deadline snaps shut so the run is genuinely cut
   short mid-exploration, whatever the fixture's exact path count.  The
   calibration budget carries a never-firing deadline — a deadline-free
   budget skips the clock on every deadline check, which would collapse
   the count to a handful of reads. *)
let fixture_clock_reads =
  lazy
    (let n = ref 0 in
     let budget =
       B.with_clock
         (B.with_deadline B.default (Some 1e12))
         (fun () ->
           incr n;
           0.)
     in
     ignore (P.analyze_exn ~opts:(opts_with ~budget ()) Fixtures.target "autocommit");
     !n)

let deadline_budget () =
  let after = max 10 (Lazy.force fixture_clock_reads / 3) in
  B.with_clock (B.with_deadline B.default (Some 60.)) (jump_clock ~after ~to_:1e6)

let test_deadline_terminates_and_flags () =
  let a =
    P.analyze_exn ~opts:(opts_with ~budget:(deadline_budget ()) ())
      Fixtures.target "autocommit"
  in
  check Alcotest.bool "deadline hit" true a.P.result.Ex.stats.Ex.deadline_hit;
  check Alcotest.bool "budget-killed states present" true
    (List.exists
       (fun (st : S.t) ->
         match st.S.status with
         | S.Killed reason -> Ex.is_budget_kill reason
         | _ -> false)
       a.P.result.Ex.states);
  (* the model carries the degradation summary and is flagged *)
  check Alcotest.bool "model flagged degraded" true (M.is_degraded a.P.model);
  (match a.P.model.M.degradation with
  | Some d -> check Alcotest.bool "summary records deadline" true d.M.deadline_hit
  | None -> Alcotest.fail "degradation summary missing");
  (* the telemetry JSON exposes it *)
  let json = Vsched.Exploration_stats.to_json a.P.result.Ex.sched in
  check Alcotest.bool "telemetry deadline flag" true
    (contains json "\"deadline_hit\":true");
  (* a degraded model survives the disk round-trip, flag included *)
  match M.of_string (M.to_string a.P.model) with
  | Ok m ->
    check Alcotest.bool "degradation survives serialization" true (M.is_degraded m);
    check Alcotest.string "degraded round-trip is exact" (M.to_string a.P.model)
      (M.to_string m)
  | Error e -> Alcotest.failf "degraded model did not round-trip: %s" e

let test_degradation_widens_specious_set () =
  (* the full model flags the poor default; a degraded run of the same
     analysis must still flag it — dropped paths are reported
     conservatively, so the specious set only widens *)
  let file = CF.parse "" in
  let findings model =
    match Checker.check_current ~model ~registry:Fixtures.registry ~file () with
    | Ok r -> r.Checker.findings
    | Error e -> Alcotest.fail e
  in
  let full = (P.analyze_exn Fixtures.target "autocommit").P.model in
  check Alcotest.bool "full model flags" true (findings full <> []);
  let degraded =
    (P.analyze_exn ~opts:(opts_with ~budget:(deadline_budget ()) ())
       Fixtures.target "autocommit")
      .P.model
  in
  check Alcotest.bool "degraded model is flagged degraded" true (M.is_degraded degraded);
  check Alcotest.bool "degraded model still flags (widening)" true
    (findings degraded <> []);
  (* every dropped path yields a conservative finding *)
  match degraded.M.degradation with
  | Some d when d.M.dropped_paths <> [] ->
    let dfs = Checker.degraded_findings degraded in
    check Alcotest.int "one conservative finding per dropped path"
      (List.length d.M.dropped_paths) (List.length dfs);
    List.iter
      (fun (f : Checker.finding) ->
        check Alcotest.string "trigger" "degraded" f.Checker.trigger)
      dfs
  | _ -> Alcotest.fail "expected dropped paths under the deadline"

(* ------------------------------------------------------------------ *)
(* Chaos harness                                                       *)
(* ------------------------------------------------------------------ *)

let prop_chaos_never_raises =
  QCheck2.Test.make ~name:"chaotic runs never raise; degraded results are flagged"
    ~count:10
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
      let path = tmp_path () in
      let opts =
        opts_with
          ~budget:(deadline_budget ())
          ~checkpoint:{ P.path; every_picks = 2 }
          ~chaos:(Ch.default_with_seed seed) ()
      in
      let ok =
        match P.analyze ~opts Fixtures.target "autocommit" with
        | Ok a ->
          (* the robustness contract: a cut-short run must say so *)
          (not a.P.result.Ex.stats.Ex.deadline_hit) || M.is_degraded a.P.model
        | Error _ -> true (* a typed error is an acceptable outcome *)
      in
      if Sys.file_exists path then Sys.remove path;
      ok)

let prop_config_fuzz =
  let valid =
    "# comment\n[mysqld]\nautocommit = ON\nflush_at_trx_commit = 2\nskip-locking\nbinlog_format = 1\n"
  in
  QCheck2.Test.make ~name:"config parser survives random byte mutations" ~count:300
    QCheck2.Gen.(int_range 0 1_000_000)
    (fun seed ->
      let c = Ch.make ~model_corrupt:1.0 ~seed () in
      let s = ref valid in
      for _ = 1 to 8 do
        s := Ch.corrupt_string c !s
      done;
      let f = CF.parse !s in
      ignore (CF.bindings f);
      ignore (CF.issues f);
      (match CF.to_assignment Fixtures.registry f with Ok _ | Error _ -> ());
      true)

let prop_model_corruption_fuzz =
  let serialized =
    lazy (M.to_string (P.analyze_exn Fixtures.target "autocommit").P.model)
  in
  QCheck2.Test.make ~name:"model loader survives corrupted bytes" ~count:100
    QCheck2.Gen.(int_range 0 1_000_000)
    (fun seed ->
      let c = Ch.make ~model_corrupt:1.0 ~seed () in
      let s = ref (Lazy.force serialized) in
      for _ = 1 to 4 do
        s := Ch.corrupt_string c !s
      done;
      (match M.of_string !s with Ok _ | Error _ -> ());
      true)

let qt = QCheck_alcotest.to_alcotest

let tests =
  [
    tc "budget clock and pressure" test_budget_clock;
    tc "checkpoint roundtrip" test_checkpoint_roundtrip;
    tc "checkpoint damage is typed" test_checkpoint_damage;
    tc "chaos spec parsing" test_chaos_spec;
    tc "degradation ladder" test_degradation_ladder;
    tc "solver deadline" test_solver_deadline;
    stc "resume is byte-identical" test_resume_byte_identical;
    stc "kill -9 then resume is byte-identical" test_kill9_resume_byte_identical;
    stc "deadline terminates and flags" test_deadline_terminates_and_flags;
    stc "degradation widens the specious set" test_degradation_widens_specious_set;
    qt prop_chaos_never_raises;
    qt prop_config_fuzz;
    qt prop_model_corruption_fuzz;
  ]
