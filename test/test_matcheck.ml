(* Tests for the materialized checker fast path (DESIGN.md Section 5j):
   interval-set compilation, compiled-vs-solver equivalence (fixture,
   degraded models, QCheck over vfuzz-generated systems), the witness
   ordering, registry recompilation skipping, and the threaded joint-input
   budget. *)

module Checker = Vchecker.Checker
module CM = Vmodel.Compiled_model
module M = Vmodel.Impact_model
module Row = Vmodel.Cost_row
module Reg = Vserve.Registry
module E = Vsmt.Expr
module Iset = Vsmt.Iset

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f
let or_fail = function Ok v -> v | Error e -> Alcotest.fail e

let mk_tmpdir () =
  let path = Filename.temp_file "matcheck" "" in
  Sys.remove path;
  Unix.mkdir path 0o700;
  path

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Unix.rmdir path
  end
  else Sys.remove path

let fixture_model =
  let m =
    lazy (Violet.Pipeline.analyze_exn Fixtures.target "autocommit").Violet.Pipeline.model
  in
  fun () -> Lazy.force m

let fingerprint (rep : Checker.report) =
  Vfuzz.Oracle.findings_fingerprint rep.Checker.findings

(* ------------------------------------------------------------------ *)
(* Iset: normalization, boundaries, algebra                            *)
(* ------------------------------------------------------------------ *)

let iv lo hi = { Vsmt.Interval.lo; hi }

let test_iset_normalize () =
  (* overlapping and adjacent ranges merge into normal form *)
  let s = Iset.of_intervals [ iv 3 5; iv 0 2; iv 4 8 ] in
  check (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int)) "merged"
    [ 0, 8 ]
    (List.map (fun (i : Vsmt.Interval.t) -> i.lo, i.hi) (Iset.intervals s));
  check Alcotest.int "cardinal" 9 (Iset.cardinal s);
  let gap = Iset.of_intervals [ iv 0 1; iv 3 4 ] in
  check Alcotest.int "gap kept" 2 (List.length (Iset.intervals gap));
  check Alcotest.bool "mem lower boundary" true (Iset.mem 0 gap);
  check Alcotest.bool "mem upper boundary" true (Iset.mem 4 gap);
  check Alcotest.bool "gap excluded" false (Iset.mem 2 gap)

let test_iset_algebra () =
  let dom = Vsmt.Dom.int_range 0 9 in
  let a = Iset.of_intervals [ iv 0 4 ] and b = Iset.of_intervals [ iv 3 7 ] in
  check Alcotest.bool "inter" true
    (Iset.equal (Iset.inter a b) (Iset.of_intervals [ iv 3 4 ]));
  check Alcotest.bool "union" true
    (Iset.equal (Iset.union a b) (Iset.of_intervals [ iv 0 7 ]));
  check Alcotest.bool "complement" true
    (Iset.equal (Iset.complement ~dom a) (Iset.of_intervals [ iv 5 9 ]));
  check Alcotest.bool "complement of empty is dom" true
    (Iset.equal (Iset.complement ~dom Iset.empty) (Iset.of_dom dom));
  check Alcotest.bool "a ∩ ¬a empty" true
    (Iset.is_empty (Iset.inter a (Iset.complement ~dom a)));
  check Alcotest.bool "a ∪ ¬a full" true
    (Iset.equal (Iset.union a (Iset.complement ~dom a)) (Iset.of_dom dom))

let test_iset_of_expr_boundaries () =
  let v = E.{ name = "x"; dom = Vsmt.Dom.int_range 0 7; origin = Config } in
  let set e =
    match Iset.of_expr ~var:v e with
    | Some s -> s
    | None -> Alcotest.fail "expected a closed set"
  in
  check Alcotest.bool "v >= lo is full" true
    (Iset.equal (set E.(of_var v >=. const 0)) (Iset.of_dom v.E.dom));
  check Alcotest.bool "v > hi is empty" true
    (Iset.is_empty (set E.(of_var v >. const 7)));
  check Alcotest.bool "v <= hi is full" true
    (Iset.equal (set E.(of_var v <=. const 7)) (Iset.of_dom v.E.dom));
  check Alcotest.int "point at boundary" 1 (Iset.cardinal (set E.(of_var v ==. const 7)));
  (* a variable wider than the saturating interval bounds cannot be clipped
     exactly, so the compiler must refuse rather than approximate *)
  let wide =
    E.{ name = "w"; dom = Vsmt.Dom.int_range min_int max_int; origin = Config }
  in
  check Alcotest.bool "unclippable domain stays open" true
    (Iset.of_expr ~var:wide E.(of_var wide >. const 0) = None)

(* of_expr promises the *exact* truth set: whenever it closes an expression,
   membership must agree with concrete evaluation on every domain value. *)
let prop_of_expr_exact =
  let open QCheck2 in
  let var = E.{ name = "x"; dom = Vsmt.Dom.int_range (-6) 9; origin = Config } in
  let expr_gen =
    let open Gen in
    sized @@ fix (fun self n ->
        let atom =
          oneof [ return (E.of_var var); map E.const (int_range (-12) 12) ]
        in
        if n <= 0 then atom
        else
          let sub = self (n / 2) in
          oneof
            [
              atom;
              map2 E.( +. ) sub sub;
              map2 E.( -. ) sub sub;
              map2 E.( *. ) sub sub;
              map2 E.( ==. ) sub sub;
              map2 E.( <. ) sub sub;
              map2 E.( <=. ) sub sub;
              map2 E.( >. ) sub sub;
              map2 E.( >=. ) sub sub;
              map2 E.( &&. ) sub sub;
              map2 E.( ||. ) sub sub;
              map E.not_ sub;
            ])
  in
  Test.make ~name:"Iset.of_expr is the exact truth set" ~count:300 expr_gen (fun e ->
      match Iset.of_expr ~var e with
      | None -> true
      | Some s ->
        let lo = Vsmt.Dom.lo var.E.dom and hi = Vsmt.Dom.hi var.E.dom in
        let rec go x =
          if x > hi then true
          else begin
            let truthy = E.eval (fun _ -> x) e <> 0 in
            if Iset.mem x s <> truthy then
              QCheck2.Test.fail_reportf "disagrees at %d (eval %b)" x truthy
            else go (x + 1)
          end
        in
        go lo)

(* ------------------------------------------------------------------ *)
(* Compiled model: fallback, ordering, equivalence                     *)
(* ------------------------------------------------------------------ *)

(* A row whose config constraint involves a symbol that is not a
   configuration parameter (an engine-internal unknown) cannot be closed
   into decision tables; the compiled model must answer for it through the
   per-row solver fallback, identically. *)
let test_unclosable_row_fallback () =
  let model = fixture_model () in
  let base = List.hd model.M.rows in
  let a = E.var ~origin:E.Config "autocommit" Vsmt.Dom.bool in
  let mystery = E.var ~origin:E.Internal "engine_internal" (Vsmt.Dom.int_range 0 4) in
  let gnarly =
    { base with Row.state_id = 7_777; config_constraints = E.[ a +. mystery >. const 0 ] }
  in
  let model = { model with M.rows = model.M.rows @ [ gnarly ] } in
  let cm = CM.compile model in
  let st = CM.stats cm in
  check Alcotest.bool "row left open" true (st.CM.rows_open >= 1);
  List.iter
    (fun assignment ->
      let reference = M.rows_matching model assignment in
      let compiled = CM.rows_matching cm assignment in
      check Alcotest.int "same matching count" (List.length reference)
        (List.length compiled);
      List.iter2
        (fun (r : Row.t) (c : Row.t) ->
          check Alcotest.int "same row" r.Row.state_id c.Row.state_id)
        reference compiled)
    [
      [ "autocommit", 1; "flush_at_trx_commit", 1 ];
      [ "autocommit", 0; "flush_at_trx_commit", 2 ];
      [ "autocommit", 1; "flush_at_trx_commit", 0 ];
    ]

(* the reference ordering as the checker defines it *)
let reference_order ~cap slow rows =
  let decorated =
    rows
    |> List.filter (fun (r : Row.t) -> r.Row.state_id <> slow.Row.state_id)
    |> List.map (fun r ->
           ((Vmodel.Similarity.workload_score slow r, Vmodel.Similarity.score slow r), r))
  in
  let sorted =
    List.stable_sort
      (fun ((wa, ca), _) ((wb, cb), _) ->
        if wa <> wb then Int.compare wb wa else Int.compare cb ca)
      decorated
  in
  List.filteri (fun i _ -> i < cap) (List.map snd sorted)

let test_comparison_order_equivalence () =
  let model = fixture_model () in
  let cm = CM.compile model in
  let same name expected got =
    check (Alcotest.list Alcotest.int) name
      (List.map (fun (r : Row.t) -> r.Row.state_id) expected)
      (List.map (fun (r : Row.t) -> r.Row.state_id) got)
  in
  List.iter
    (fun slow ->
      (* plain query *)
      same "order" (reference_order ~cap:48 slow model.M.rows)
        (CM.comparison_order cm ~cap:48 ~slow model.M.rows);
      (* tiny cap exercises truncation inside a tie group *)
      same "capped order" (reference_order ~cap:2 slow model.M.rows)
        (CM.comparison_order cm ~cap:2 ~slow model.M.rows);
      (* duplicated candidates: occurrence positions must be preserved *)
      let dup = model.M.rows @ model.M.rows in
      same "duplicates" (reference_order ~cap:48 slow dup)
        (CM.comparison_order cm ~cap:48 ~slow dup);
      (* a physically foreign copy of a row (same content) must not be
         mistaken for the model row: the generic path answers, identically *)
      let foreign = List.map (fun (r : Row.t) -> { r with Row.state_id = r.Row.state_id }) model.M.rows in
      same "foreign rows" (reference_order ~cap:48 slow foreign)
        (CM.comparison_order cm ~cap:48 ~slow foreign))
    model.M.rows

let all_modes = [ Checker.Solver; Checker.Materialized; Checker.Hybrid ]

let fingerprints_of ?compiled ?joint_input_max_nodes model file =
  List.map
    (fun mode ->
      match
        Checker.check_current ~mode ?compiled ?joint_input_max_nodes ~model
          ~registry:Fixtures.registry ~file ()
      with
      | Ok rep -> fingerprint rep
      | Error e -> Alcotest.fail e)
    all_modes

let test_modes_identical_on_fixture () =
  let model = fixture_model () in
  let compiled = CM.compile model in
  List.iter
    (fun text ->
      let file = Vchecker.Config_file.parse text in
      match fingerprints_of ~compiled model file with
      | [ s; m; h ] ->
        check Alcotest.string "materialized = solver" s m;
        check Alcotest.string "hybrid = solver" s h
      | _ -> assert false)
    [ ""; "autocommit = OFF\n"; "autocommit = ON\nflush_at_trx_commit = 2\n" ]

let with_degradation model =
  let autocommit = E.{ name = "autocommit"; dom = Vsmt.Dom.bool; origin = Config } in
  {
    model with
    M.degradation =
      Some
        {
          M.rungs = [ "solver-light" ];
          deadline_hit = true;
          dropped_paths =
            [
              {
                M.dp_state_id = 9_999;
                dp_config_constraints = E.[ of_var autocommit ==. const 1 ];
                dp_latency_so_far_us = 1234.;
              };
            ];
        };
  }

let test_degraded_widening_identical () =
  let model = with_degradation (fixture_model ()) in
  let compiled = CM.compile model in
  let file = Vchecker.Config_file.parse "" in
  (match fingerprints_of ~compiled model file with
  | [ s; m; h ] ->
    check Alcotest.string "materialized = solver" s m;
    check Alcotest.string "hybrid = solver" s h
  | _ -> assert false);
  (* and the conservative widening is actually present in every mode *)
  List.iter
    (fun mode ->
      let rep =
        or_fail
          (Checker.check_current ~mode ~compiled ~model ~registry:Fixtures.registry
             ~file ())
      in
      check Alcotest.bool "degraded finding surfaced" true
        (List.exists (fun f -> f.Checker.trigger = "degraded") rep.Checker.findings))
    all_modes

let test_joint_budget_threading () =
  let model = fixture_model () in
  let compiled = CM.compile model in
  let file = Vchecker.Config_file.parse "" in
  (* a budget different from the compiled table's key forces the live gate;
     all modes must still agree at that budget *)
  List.iter
    (fun budget ->
      match fingerprints_of ~compiled ~joint_input_max_nodes:budget model file with
      | [ s; m; h ] ->
        check Alcotest.string "materialized = solver" s m;
        check Alcotest.string "hybrid = solver" s h
      | _ -> assert false)
    [ 5; Checker.default_joint_input_max_nodes; 50_000 ]

(* ------------------------------------------------------------------ *)
(* Mode equivalence over generated systems (QCheck)                    *)
(* ------------------------------------------------------------------ *)

let prop_modes_identical_generated =
  QCheck2.Test.make ~name:"modes agree byte-for-byte on generated systems" ~count:20
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
      let spec = List.hd (Vfuzz.Generate.corpus ~seed ~count:1 ()) in
      let target = Vfuzz.Genspec.to_target spec in
      let registry = target.Violet.Pipeline.registry in
      let params =
        List.map (fun (p : Vfuzz.Genspec.plant) -> p.Vfuzz.Genspec.p_param)
          spec.Vfuzz.Genspec.g_plants
        @ spec.Vfuzz.Genspec.g_decoys
      in
      List.for_all
        (fun param ->
          match Violet.Pipeline.analyze ~opts:Vfuzz.Oracle.default_opts target param with
          | Error _ -> true
          | Ok a ->
            let model = a.Violet.Pipeline.model in
            let file = Vchecker.Config_file.parse "" in
            let compiled = CM.compile model in
            let fp mode ?c () =
              match Checker.check_current ~mode ?compiled:c ~model ~registry ~file () with
              | Ok rep -> fingerprint rep
              | Error e -> "error: " ^ e
            in
            let reference = fp Checker.Solver () in
            let legs =
              [
                fp Checker.Materialized ~c:compiled ();
                fp Checker.Materialized ();
                fp Checker.Hybrid ~c:compiled ();
              ]
            in
            if List.for_all (String.equal reference) legs then true
            else
              QCheck2.Test.fail_reportf "modes disagree on %s/%s"
                spec.Vfuzz.Genspec.g_name param)
        params)

(* ------------------------------------------------------------------ *)
(* check_upgrade: keyed lookup semantics                               *)
(* ------------------------------------------------------------------ *)

(* Two old rows rendering to the same constraint string: the keyed lookup
   must keep [List.assoc]'s first-occurrence-wins semantics. *)
let test_upgrade_duplicate_constraints () =
  let model = fixture_model () in
  let poor = List.hd (M.poor_rows model) in
  let fast =
    List.find (fun r -> not (M.is_poor_row model r)) model.M.rows
  in
  (* a slow twin of the fast row: same constraint string, poor cost *)
  let slow_twin =
    {
      fast with
      Row.state_id = 8_888;
      cost = poor.Row.cost;
      traced_latency_us = poor.Row.traced_latency_us;
      critical_ops = poor.Row.critical_ops;
    }
  in
  let upgraded = { slow_twin with Row.state_id = 8_889 } in
  let new_model = { model with M.rows = [ upgraded ] } in
  (* first occurrence fast: the upgrade looks like a big regression *)
  let r1 =
    Checker.check_upgrade ~old_model:{ model with M.rows = [ fast; slow_twin ] }
      ~new_model ()
  in
  check Alcotest.bool "first-occurrence fast -> flagged" true (r1.Checker.findings <> []);
  (* first occurrence slow: same latency as before, nothing to flag *)
  let r2 =
    Checker.check_upgrade ~old_model:{ model with M.rows = [ slow_twin; fast ] }
      ~new_model ()
  in
  check Alcotest.int "first-occurrence slow -> silent" 0 (List.length r2.Checker.findings)

(* ------------------------------------------------------------------ *)
(* Registry: compile at load, skip when the digest is unchanged        *)
(* ------------------------------------------------------------------ *)

let test_registry_skips_recompile () =
  let dir = mk_tmpdir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let path = Reg.model_file ~dir ~key:"mini" in
  or_fail (Violet.Pipeline.export_model (fixture_model ()) path);
  let reg = Reg.create ~dir () in
  ignore (Reg.refresh reg);
  check Alcotest.int "compiled on first load" 1 (Reg.compiles reg);
  let e1 = Option.get (Reg.find reg "mini") in
  (match e1.Reg.compiled with
  | Some cm -> check Alcotest.bool "artifact is for the live model" true (CM.model cm == e1.Reg.model)
  | None -> Alcotest.fail "expected a compiled artifact");
  (* rewrite the same payload: same digest, no reload, no recompile *)
  or_fail (Violet.Pipeline.export_model (fixture_model ()) path);
  (match Reg.refresh ~force:true reg with
  | [] -> ()
  | evs ->
    Alcotest.fail
      ("unchanged digest must not reload: "
      ^ String.concat "; " (List.map Reg.event_to_string evs)));
  check Alcotest.int "generation unchanged" 1
    (Option.get (Reg.find reg "mini")).Reg.generation;
  check Alcotest.int "no recompile" 1 (Reg.compiles reg);
  (* stage/commit of the same payload also reuses the artifact *)
  ignore (Reg.stage reg);
  ignore (or_fail (Reg.commit reg));
  check Alcotest.int "no recompile across stage/commit" 1 (Reg.compiles reg);
  (* a real change recompiles and bumps the generation *)
  or_fail
    (Violet.Pipeline.export_model
       { (fixture_model ()) with M.threshold = 0.9 }
       path);
  (match Reg.refresh ~force:true reg with
  | [ Reg.Loaded { key = "mini"; generation = 2 } ] -> ()
  | evs ->
    Alcotest.fail
      ("expected generation 2: " ^ String.concat "; " (List.map Reg.event_to_string evs)));
  check Alcotest.int "changed digest recompiles" 2 (Reg.compiles reg);
  check Alcotest.bool "compile tax measured" true (Reg.compile_wall_s reg > 0.)

let tests =
  [
    tc "iset: normalization and boundaries" test_iset_normalize;
    tc "iset: algebra" test_iset_algebra;
    tc "iset: of_expr domain boundaries" test_iset_of_expr_boundaries;
    QCheck_alcotest.to_alcotest prop_of_expr_exact;
    tc "compiled: unclosable row falls back" test_unclosable_row_fallback;
    tc "compiled: comparison order equivalence" test_comparison_order_equivalence;
    tc "modes identical on fixture" test_modes_identical_on_fixture;
    tc "degraded widening identical in all modes" test_degraded_widening_identical;
    tc "joint budget threads through all modes" test_joint_budget_threading;
    QCheck_alcotest.to_alcotest prop_modes_identical_generated;
    tc "check_upgrade: duplicate constraint strings" test_upgrade_duplicate_constraints;
    tc "registry: unchanged digest skips recompile" test_registry_skips_recompile;
  ]
