(* Tests for the trace analyzer: cost rows, similarity, LCS, differential
   analysis with its comparability rules, and impact-model persistence. *)

module Row = Vmodel.Cost_row
module Diff = Vmodel.Diff_analysis
module CPth = Vmodel.Critical_path
module M = Vmodel.Impact_model
module E = Vsmt.Expr
module Cost = Vruntime.Cost

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

let cvar name dom = E.{ name; dom; origin = Config }
let wvar name dom = E.{ name; dom; origin = Workload }

let flag = cvar "flag" Vsmt.Dom.bool
let size = cvar "size" (Vsmt.Dom.int_range 0 1000)
let kind = wvar "kind" (Vsmt.Dom.enum "kind" [ "R"; "W" ])

let row ?(id = 0) ?(configs = []) ?(workload = []) ?(latency = 100.) ?(cost = Cost.zero) () =
  {
    Row.state_id = id;
    config_constraints = configs;
    workload_pred = workload;
    cost = { cost with Cost.latency_us = latency };
    traced_latency_us = latency;
    chain = [];
    nodes = [];
    critical_ops = [];
  }

(* ------------------------------------------------------------------ *)
(* Cost_row                                                            *)
(* ------------------------------------------------------------------ *)

let test_satisfied_by () =
  let r = row ~configs:E.[ of_var flag ==. const 1; of_var size >. const 10 ] () in
  check Alcotest.bool "sat" true (Row.satisfied_by r [ "flag", 1; "size", 50 ]);
  check Alcotest.bool "unsat" false (Row.satisfied_by r [ "flag", 0; "size", 50 ]);
  (* an unassigned parameter is a free variable: satisfiable residual *)
  check Alcotest.bool "missing var leaves residual satisfiable" true
    (Row.satisfied_by r [ "flag", 1 ]);
  check Alcotest.bool "unsat residual" false
    (Row.satisfied_by (row ~configs:E.[ of_var size >. const 5000 ] ()) [])

let test_satisfied_by_mixed_constraint () =
  (* config constraints can mention workload vars (the c6 shape): the
     setting satisfies the row when the residual is satisfiable *)
  let r = row ~configs:E.[ binop Gt (of_var kind) (of_var size) ] () in
  (* kind in [0..1]: with size=0 residual kind>0 is satisfiable *)
  check Alcotest.bool "residual sat" true (Row.satisfied_by r [ "size", 0 ]);
  check Alcotest.bool "residual unsat" false (Row.satisfied_by r [ "size", 500 ])

let test_constraint_string () =
  let r = row ~configs:E.[ of_var flag ==. const 1 ] () in
  check Alcotest.string "friendly" "flag==ON" (Row.constraint_string r);
  check Alcotest.string "empty is true" "true" (Row.constraint_string (row ()))

(* ------------------------------------------------------------------ *)
(* Similarity                                                          *)
(* ------------------------------------------------------------------ *)

let test_similarity_counts () =
  let a = row ~configs:E.[ of_var flag ==. const 1; of_var size >. const 5 ] () in
  let b = row ~configs:E.[ of_var flag ==. const 1; of_var size >. const 7 ] () in
  check Alcotest.int "one shared appearance" 1 (Vmodel.Similarity.score a b);
  let c = row ~configs:E.[ of_var flag ==. const 1; of_var size >. const 5 ] () in
  check Alcotest.int "two shared" 2 (Vmodel.Similarity.score a c)

let test_rank_pairs_order () =
  let a = row ~id:1 ~configs:E.[ of_var flag ==. const 1 ] () in
  let b = row ~id:2 ~configs:E.[ of_var flag ==. const 1 ] () in
  let c = row ~id:3 ~configs:E.[ of_var size >. const 5 ] () in
  match Vmodel.Similarity.rank_pairs [ a; b; c ] with
  | (x, y, s) :: _ ->
    check Alcotest.int "most similar first" 1 s;
    check Alcotest.bool "it is the a-b pair" true
      (x.Row.state_id + y.Row.state_id = 3)
  | [] -> Alcotest.fail "no pairs"

(* ------------------------------------------------------------------ *)
(* LCS                                                                 *)
(* ------------------------------------------------------------------ *)

let strings_gen = QCheck2.Gen.(list_size (int_range 0 30) (oneofl [ "a"; "b"; "c"; "d" ]))

let prop_lcs_is_common_subsequence =
  QCheck2.Test.make ~name:"lcs is a subsequence of both inputs" ~count:300
    QCheck2.Gen.(pair strings_gen strings_gen)
    (fun (xs, ys) ->
      let pairs = CPth.lcs xs ys in
      let increasing sel =
        let idxs = List.map sel pairs in
        List.for_all2 ( < )
          (List.filteri (fun i _ -> i < List.length idxs - 1) idxs)
          (match idxs with [] -> [] | _ :: t -> t)
      in
      let matches =
        List.for_all (fun (i, j) -> List.nth xs i = List.nth ys j) pairs
      in
      matches && increasing fst && increasing snd)

let prop_lcs_self =
  QCheck2.Test.make ~name:"lcs of a list with itself is the list" ~count:200 strings_gen
    (fun xs -> List.length (CPth.lcs xs xs) = List.length xs)

let test_lcs_example () =
  let pairs = CPth.lcs [ "a"; "b"; "c"; "d" ] [ "b"; "d" ] in
  check Alcotest.int "length 2" 2 (List.length pairs)

(* ------------------------------------------------------------------ *)
(* Diff_analysis                                                       *)
(* ------------------------------------------------------------------ *)

let test_threshold_boundary () =
  (* 100% threshold: 2x latency is not strictly above, 2.01x is *)
  let fast = row ~id:1 ~configs:E.[ of_var flag ==. const 0 ] ~latency:100. () in
  let at = row ~id:2 ~configs:E.[ of_var flag ==. const 1 ] ~latency:200. () in
  let above = row ~id:3 ~configs:E.[ of_var flag ==. const 1 ] ~latency:201. () in
  let d1 = Diff.analyze [ fast; at ] in
  check Alcotest.int "2x not flagged" 0 (List.length d1.Diff.pairs);
  let d2 = Diff.analyze [ fast; above ] in
  check Alcotest.int "2.01x flagged" 1 (List.length d2.Diff.pairs);
  check (Alcotest.list Alcotest.int) "poor state" [ 3 ] d2.Diff.poor_state_ids

let test_equal_config_sets_not_compared () =
  (* same configuration constraints: the difference is input-driven *)
  let a = row ~id:1 ~configs:E.[ of_var flag ==. const 1 ]
      ~workload:E.[ of_var kind ==. const 0 ] ~latency:100. () in
  let b = row ~id:2 ~configs:E.[ of_var flag ==. const 1 ]
      ~workload:E.[ of_var kind ==. const 1 ] ~latency:1000. () in
  let d = Diff.analyze [ a; b ] in
  check Alcotest.int "not compared" 0 (List.length d.Diff.pairs)

(* regression for the hashconsed grouping keys: structurally equal
   constraint sets that were built separately and listed in different orders
   must land in one group (skipped as same-config), while a genuinely
   different set in the same run is still compared *)
let test_group_membership_order_insensitive () =
  let a =
    row ~id:1 ~configs:E.[ of_var flag ==. const 1; of_var size >. const 5 ]
      ~latency:100. ()
  in
  let b =
    (* same set, rebuilt from scratch in the opposite order, 9x slower *)
    row ~id:2 ~configs:E.[ of_var size >. const 5; of_var flag ==. const 1 ]
      ~latency:900. ()
  in
  let c = row ~id:3 ~configs:E.[ of_var flag ==. const 0 ] ~latency:100. () in
  let d = Diff.analyze [ a; b; c ] in
  check Alcotest.bool "a-b (same set, reordered) never paired" false
    (List.exists
       (fun (p : Diff.poor_pair) ->
         p.Diff.slow.Row.state_id = 2 && p.Diff.fast.Row.state_id = 1)
       d.Diff.pairs);
  check Alcotest.bool "b still flagged against the other group" true (Diff.is_poor d 2);
  check Alcotest.bool "a never flagged" false (Diff.is_poor d 1);
  (* the similarity metric also sees rebuilt constraints as shared *)
  check Alcotest.int "similarity counts shared nodes across separate builds" 2
    (Vmodel.Similarity.score a b)

let test_incompatible_inputs_not_compared () =
  (* no single input class triggers both states *)
  let a = row ~id:1 ~configs:E.[ of_var flag ==. const 1 ]
      ~workload:E.[ of_var kind ==. const 0 ] ~latency:1000. () in
  let b = row ~id:2 ~configs:E.[ of_var flag ==. const 0 ]
      ~workload:E.[ of_var kind ==. const 1 ] ~latency:100. () in
  let d = Diff.analyze [ a; b ] in
  check Alcotest.int "not compared" 0 (List.length d.Diff.pairs)

let test_logical_metric_triggers () =
  (* latency similar, I/O calls differ: the c6/c17 pattern *)
  let a =
    row ~id:1 ~configs:E.[ of_var flag ==. const 1 ] ~latency:100.
      ~cost:{ Cost.zero with Cost.io_calls = 5 } ()
  in
  let b =
    row ~id:2 ~configs:E.[ of_var flag ==. const 0 ] ~latency:105.
      ~cost:{ Cost.zero with Cost.io_calls = 1 } ()
  in
  let d = Diff.analyze [ a; b ] in
  match d.Diff.pairs with
  | [ p ] ->
    check Alcotest.bool "io trigger" true (List.mem (Diff.Logical "io_calls") p.Diff.triggers);
    check Alcotest.bool "no latency trigger" false (List.mem Diff.Latency p.Diff.triggers);
    check Alcotest.string "label" "I/O" (Diff.trigger_label p.Diff.triggers)
  | _ -> Alcotest.fail "one pair"

let test_trigger_labels () =
  check Alcotest.string "latency only" "Latency" (Diff.trigger_label [ Diff.Latency ]);
  check Alcotest.string "lat+sync" "Lat.&Sync."
    (Diff.trigger_label [ Diff.Latency; Diff.Logical "sync_ops" ]);
  check Alcotest.string "none" "-" (Diff.trigger_label [])

let test_compare_pair_direct () =
  let slow = row ~id:1 ~latency:500. () and fast = row ~id:2 ~latency:100. () in
  (match Diff.compare_pair ~threshold:1.0 ~slow ~fast with
  | Some (worst, triggers) ->
    check Alcotest.bool "worst is 4x diff" true (Float.abs (worst -. 4.) < 1e-6);
    check Alcotest.bool "latency" true (List.mem Diff.Latency triggers)
  | None -> Alcotest.fail "should trigger");
  check Alcotest.bool "below threshold" true
    (Diff.compare_pair ~threshold:5.0 ~slow ~fast = None)

(* ------------------------------------------------------------------ *)
(* Critical path                                                       *)
(* ------------------------------------------------------------------ *)

let test_differential_critical_path () =
  (* from the pipeline on the fixture: the slow pair's differential path
     must end in the fsync wrapper *)
  let a = Violet.Pipeline.analyze_exn Fixtures.target "autocommit" in
  let slow_pairs =
    List.filter
      (fun (p : Diff.poor_pair) -> p.Diff.latency_ratio > 5.)
      a.Violet.Pipeline.diff.Diff.pairs
  in
  check Alcotest.bool "found slow pairs" true (slow_pairs <> []);
  check Alcotest.bool "some path reaches fil_flush" true
    (List.exists
       (fun (p : Diff.poor_pair) ->
         match List.rev p.Diff.diff.CPth.critical_path with
         | last :: _ -> last = "fil_flush" || last = "log_buffer_flush_to_disk"
         | [] -> false)
       slow_pairs)

(* ------------------------------------------------------------------ *)
(* Impact model                                                        *)
(* ------------------------------------------------------------------ *)

let sample_model () =
  let rows =
    [
      row ~id:1 ~configs:E.[ of_var flag ==. const 1 ] ~workload:E.[ of_var kind ==. const 1 ]
        ~latency:900. ();
      row ~id:2 ~configs:E.[ of_var flag ==. const 0 ] ~workload:E.[ of_var kind ==. const 1 ]
        ~latency:100. ();
    ]
  in
  let analysis = Diff.analyze rows in
  M.build ~system:"t" ~target:"flag" ~related:[ "size" ] ~rows ~analysis
    ~explored_states:2 ~analysis_wall_s:0.1 ~virtual_analysis_s:60. ()

let test_model_queries () =
  let m = sample_model () in
  check Alcotest.int "poor" 1 (List.length (M.poor_rows m));
  check Alcotest.bool "row_by_id" true (M.row_by_id m 1 <> None);
  check Alcotest.int "matching flag=1" 1 (List.length (M.rows_matching m [ "flag", 1 ]));
  let slow = Option.get (M.row_by_id m 1) and fast = Option.get (M.row_by_id m 2) in
  check Alcotest.bool "pair recorded" true (M.pairs_between m ~slow ~fast <> [])

let test_model_roundtrip_full () =
  let m = sample_model () in
  match M.of_string (M.to_string m) with
  | Error e -> Alcotest.fail e
  | Ok m' ->
    check Alcotest.string "system" m.M.system m'.M.system;
    check (Alcotest.list Alcotest.string) "related" m.M.related m'.M.related;
    check Alcotest.int "rows" (List.length m.M.rows) (List.length m'.M.rows);
    check Alcotest.int "pairs" (List.length m.M.poor_pairs) (List.length m'.M.poor_pairs);
    check (Alcotest.float 1e-9) "max ratio" m.M.max_ratio m'.M.max_ratio;
    (* constraints survive: queries still work on the loaded model *)
    check Alcotest.int "matching after reload" 1
      (List.length (M.rows_matching m' [ "flag", 1 ]))

let test_model_save_load () =
  let m = sample_model () in
  let path = Filename.temp_file "violet_test" ".sexp" in
  M.save m path;
  (match M.load path with
  | Ok m' -> check Alcotest.string "target" m.M.target m'.M.target
  | Error e -> Alcotest.fail e);
  Sys.remove path;
  check Alcotest.bool "missing file is an error" true (Result.is_error (M.load path))

let qt = QCheck_alcotest.to_alcotest

let tests =
  [
    tc "satisfied_by" test_satisfied_by;
    tc "satisfied_by mixed" test_satisfied_by_mixed_constraint;
    tc "constraint string" test_constraint_string;
    tc "similarity counts" test_similarity_counts;
    tc "rank pairs order" test_rank_pairs_order;
    qt prop_lcs_is_common_subsequence;
    qt prop_lcs_self;
    tc "lcs example" test_lcs_example;
    tc "threshold boundary" test_threshold_boundary;
    tc "equal config sets skipped" test_equal_config_sets_not_compared;
    tc "group membership ignores build order" test_group_membership_order_insensitive;
    tc "incompatible inputs skipped" test_incompatible_inputs_not_compared;
    tc "logical metric triggers" test_logical_metric_triggers;
    tc "trigger labels" test_trigger_labels;
    tc "compare_pair" test_compare_pair_direct;
    tc "differential critical path" test_differential_critical_path;
    tc "model queries" test_model_queries;
    tc "model roundtrip" test_model_roundtrip_full;
    tc "model save/load" test_model_save_load;
  ]
