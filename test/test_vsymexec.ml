(* Tests for the symbolic executor: forking, path constraints, selective
   concretization, signals, tracing control and scheduling. *)

module Ex = Vsymexec.Executor
module S = Vsymexec.Sym_state
module Sig = Vsymexec.Signals
module E = Vsmt.Expr
module Cost = Vruntime.Cost
open Vir.Builder

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f
let env = Vruntime.Hw_env.hdd_server

let run ?(sym_configs = []) ?(sym_workloads = []) ?(config = fun _ -> 0)
    ?(workload = fun _ -> 0) ?(tweak = fun o -> o) p =
  let opts =
    tweak
      { (Ex.default_options ~env ~config ~workload ()) with Ex.sym_configs; sym_workloads }
  in
  Ex.run opts p

let bool_var name = name, E.{ name; dom = Vsmt.Dom.bool; origin = Config }
let int_var name lo hi = name, E.{ name; dom = Vsmt.Dom.int_range lo hi; origin = Config }

let terminated (r : Ex.result) =
  List.filter
    (fun (st : S.t) -> match st.S.status with S.Terminated _ -> true | _ -> false)
    r.Ex.states

(* ------------------------------------------------------------------ *)

let fork_program =
  program ~name:"fork" ~entry:"main"
    [
      func "main"
        [ if_ (cfg "flag" ==. i 1) [ fsync ] [ compute (i 10) ]; ret (cfg "flag") ];
    ]

let test_concrete_matches_native () =
  (* with no symbolic variables the engine follows exactly the concrete path
     and accrues the same logical cost vector as native execution *)
  let r = run ~config:(fun _ -> 1) fork_program in
  let st = match terminated r with [ st ] -> st | _ -> Alcotest.fail "one state" in
  let native =
    Vruntime.Concrete_exec.run ~env fork_program ~config:(fun _ -> 1) ~workload:(fun _ -> 0)
  in
  check Alcotest.int "syscalls" native.Vruntime.Concrete_exec.cost.Cost.syscalls
    st.S.cost.Cost.syscalls;
  check Alcotest.int "io" native.Vruntime.Concrete_exec.cost.Cost.io_calls
    st.S.cost.Cost.io_calls

let test_fork_on_symbolic () =
  let r = run ~sym_configs:[ bool_var "flag" ] fork_program in
  let sts = terminated r in
  check Alcotest.int "two states" 2 (List.length sts);
  check Alcotest.int "one fork" 1 r.Ex.stats.Ex.forks;
  (* the two path conditions are complementary: together they cover the
     domain and are mutually exclusive *)
  match sts with
  | [ a; b ] ->
    check Alcotest.bool "both sat" true
      (Vsmt.Solver.is_feasible a.S.pc && Vsmt.Solver.is_feasible b.S.pc);
    check Alcotest.bool "mutually exclusive" false
      (Vsmt.Solver.is_feasible (a.S.pc @ b.S.pc))
  | _ -> Alcotest.fail "expected two states"

let test_costs_differ_across_paths () =
  let r = run ~sym_configs:[ bool_var "flag" ] fork_program in
  let costs =
    List.map (fun (st : S.t) -> st.S.cost.Cost.latency_us) (terminated r)
    |> List.sort Float.compare
  in
  match costs with
  | [ cheap; pricey ] -> check Alcotest.bool "fsync path slower" true (pricey > Stdlib.( *. ) 10. cheap)
  | _ -> Alcotest.fail "two costs"

let test_infeasible_pruned () =
  let p =
    program ~name:"p" ~entry:"main"
      [
        func "main"
          [
            if_ (cfg "n" >. i 5)
              [ if_ (cfg "n" <. i 3) [ fsync ] [] ]  (* dead inner branch *)
              [];
            ret_void;
          ];
      ]
  in
  let r = run ~sym_configs:[ int_var "n" 0 10 ] p in
  check Alcotest.int "two states, dead path pruned" 2 (List.length (terminated r));
  check Alcotest.bool "no fsync anywhere" true
    (List.for_all (fun (st : S.t) -> st.S.cost.Cost.io_calls = 0) (terminated r))

let test_nested_forks () =
  let p =
    program ~name:"p" ~entry:"main"
      [
        func "main"
          [
            if_ (cfg "a" ==. i 1) [ compute (i 1) ] [ compute (i 2) ];
            if_ (cfg "b" ==. i 1) [ compute (i 3) ] [ compute (i 4) ];
            ret_void;
          ];
      ]
  in
  let r = run ~sym_configs:[ bool_var "a"; bool_var "b" ] p in
  check Alcotest.int "four states" 4 (List.length (terminated r))

let test_max_states_cap () =
  let p =
    program ~name:"p" ~entry:"main"
      [
        func "main"
          [
            if_ (cfg "a" ==. i 1) [] [];
            if_ (cfg "b" ==. i 1) [] [];
            if_ (cfg "c" ==. i 1) [] [];
            ret_void;
          ];
      ]
  in
  let r =
    run
      ~sym_configs:[ bool_var "a"; bool_var "b"; bool_var "c" ]
      ~tweak:(fun o ->
        { o with Ex.budget = Vresilience.Budget.with_max_states o.Ex.budget 4 })
      p
  in
  check Alcotest.bool "capped" true (List.length (terminated r) <= 4)

let test_loop_unroll_limit () =
  let p =
    program ~name:"p" ~entry:"main"
      [
        func "main"
          [
            set "i" (i 0);
            while_ (lv "i" <. cfg "n") [ set "i" (lv "i" +. i 1) ];
            ret (lv "i");
          ];
      ]
  in
  (* n in [0..1000] but unrolling stops at the bound: states for n=0..limit
     plus one forced-exit state; nothing diverges *)
  let r =
    run ~sym_configs:[ int_var "n" 0 1000 ] ~tweak:(fun o -> { o with Ex.max_loop_unroll = 5 }) p
  in
  check Alcotest.bool "terminates" true (terminated r <> []);
  check Alcotest.bool "bounded states" true (List.length r.Ex.states <= 8)

(* ------------------------------------------------------------------ *)
(* Selective concretization (Section 5.4)                              *)
(* ------------------------------------------------------------------ *)

let lib_program effect =
  program ~name:"p" ~entry:"main"
    [
      func "main" [ call ~dest:"r" "libfn" [ cfg "x" ]; ret (lv "r") ];
      library "libfn" ~effect ~cost:[ Compute, 5 ] (fun args ->
          match args with [ v ] -> v * 10 | _ -> 0);
    ]

let final_pc (r : Ex.result) =
  match terminated r with [ st ] -> st.S.pc | _ -> Alcotest.fail "one state"

let final_ret (r : Ex.result) =
  match terminated r with
  | [ { S.status = S.Terminated (Some e); _ } ] -> e
  | _ -> Alcotest.fail "one returning state"

let test_effectful_concretizes_with_constraint () =
  let r = run ~sym_configs:[ int_var "x" 0 9 ] (lib_program Vir.Ast.Effectful) in
  (* silent concretization pins x: the path constraint records x == model *)
  let pc = final_pc r in
  check Alcotest.bool "constraint added" true (pc <> []);
  check Alcotest.bool "pins x" true
    (List.exists (fun c -> List.exists (fun (v : E.var) -> v.E.name = "x") (E.vars c)) pc);
  match E.is_const (final_ret r) with
  | Some v -> check Alcotest.int "semantics on pinned value" 0 (v mod 10)
  | None -> Alcotest.fail "return should be concrete"

let test_benign_drops_constraint () =
  let r = run ~sym_configs:[ int_var "x" 0 9 ] (lib_program Vir.Ast.Benign) in
  check Alcotest.bool "no constraint kept" true (final_pc r = []);
  check Alcotest.bool "return concrete" true (E.is_const (final_ret r) <> None)

let test_pure_returns_fresh_symbol () =
  let r = run ~sym_configs:[ int_var "x" 0 9 ] (lib_program Vir.Ast.Pure) in
  check Alcotest.bool "no constraint" true (final_pc r = []);
  match E.view (final_ret r) with
  | E.Var v -> check Alcotest.bool "internal origin" true (v.E.origin = E.Internal)
  | _ -> Alcotest.fail "expected a fresh symbolic return"

let test_relaxation_ablation () =
  (* with relaxation rules off, even a Pure library pins its arguments *)
  let r =
    run ~sym_configs:[ int_var "x" 0 9 ]
      ~tweak:(fun o -> { o with Ex.relaxation_rules = false })
      (lib_program Vir.Ast.Pure)
  in
  check Alcotest.bool "constraint kept" true (final_pc r <> [])

let test_concretize_all_taint () =
  (* x tainted y through an assignment; concretizing x must concretize y *)
  let p =
    program ~name:"p" ~entry:"main"
      [
        func "main"
          [
            set "y" (cfg "x" +. i 1);
            call "sideeffect" [ cfg "x" ];
            ret (lv "y");
          ];
        library "sideeffect" ~effect:Effectful (fun _ -> 0);
      ]
  in
  let r = run ~sym_configs:[ int_var "x" 0 9 ] p in
  check Alcotest.bool "tainted local concretized" true (E.is_const (final_ret r) <> None)

(* ------------------------------------------------------------------ *)
(* Signals and tracing                                                 *)
(* ------------------------------------------------------------------ *)

let traced_program =
  program ~name:"p" ~entry:"main"
    [
      func "main" [ call "init" []; trace_on; call "work" []; trace_off; ret_void ];
      func "init" [ compute (i 1000); ret_void ];
      func "work" [ call "leaf" []; ret_void ];
      func "leaf" [ fsync; ret_void ];
    ]

let test_tracing_window () =
  let r = run traced_program in
  let st = match terminated r with [ st ] -> st | _ -> Alcotest.fail "one state" in
  let names =
    List.filter_map
      (fun (s : Sig.record) -> if Sig.is_call s then Some s.Sig.fname else None)
      (S.signals_in_order st)
  in
  (* init happens before trace_on: not recorded; main's call signal happened
     before trace_on too *)
  check (Alcotest.list Alcotest.string) "only traced calls" [ "work"; "leaf" ] names

let test_signals_well_nested () =
  let r = run traced_program in
  let st = match terminated r with [ st ] -> st | _ -> Alcotest.fail "one state" in
  let depth = ref 0 and ok = ref true and max_depth = ref 0 in
  List.iter
    (fun (s : Sig.record) ->
      if Sig.is_call s then begin
        incr depth;
        max_depth := max !max_depth !depth
      end
      else begin
        decr depth;
        if !depth < 0 then ok := false
      end)
    (S.signals_in_order st);
  check Alcotest.bool "nested" true !ok;
  check Alcotest.int "balanced" 0 !depth;
  check Alcotest.int "depth two" 2 !max_depth

let test_cids_strictly_increasing () =
  let r = run traced_program in
  let st = match terminated r with [ st ] -> st | _ -> Alcotest.fail "one state" in
  let cids = List.map (fun (s : Sig.record) -> s.Sig.cid) (S.signals_in_order st) in
  check Alcotest.bool "increasing" true
    (List.for_all2 (fun a b -> a < b)
       (List.filteri (fun i _ -> i < List.length cids - 1) cids)
       (List.tl cids))

let test_tracer_disabled () =
  let r = run ~tweak:(fun o -> { o with Ex.enable_tracer = false }) traced_program in
  let st = match terminated r with [ st ] -> st | _ -> Alcotest.fail "one state" in
  check Alcotest.int "no signals" 0 (List.length st.S.signals)

let test_clock_inflated_by_overhead () =
  let r = run ~config:(fun _ -> 1) fork_program in
  let st = match terminated r with [ st ] -> st | _ -> Alcotest.fail "one state" in
  (* clock ~ overhead x native latency (plus tracer costs) *)
  check Alcotest.bool "inflated" true
    (st.S.clock >= Stdlib.( *. ) st.S.cost.Cost.latency_us (Stdlib.( -. ) env.Vruntime.Hw_env.symexec_overhead 0.01))

(* ------------------------------------------------------------------ *)
(* Scheduling and determinism                                          *)
(* ------------------------------------------------------------------ *)

let three_way =
  program ~name:"p" ~entry:"main"
    [
      func "main"
        [
          if_ (cfg "a" ==. i 1) [ compute (i 1) ] [];
          if_ (cfg "b" ==. i 1) [ compute (i 2) ] [];
          ret_void;
        ];
    ]

let pc_signature (r : Ex.result) =
  terminated r
  |> List.map (fun (st : S.t) ->
         String.concat "&" (List.map E.to_string (List.sort compare st.S.pc)))
  |> List.sort String.compare

let test_policies_explore_same_paths () =
  let go policy =
    run
      ~sym_configs:[ bool_var "a"; bool_var "b" ]
      ~tweak:(fun o -> { o with Ex.policy })
      three_way
  in
  let dfs = pc_signature (go Ex.Dfs) in
  let bfs = pc_signature (go Ex.Bfs) in
  let rnd = pc_signature (go (Ex.Random_path 11)) in
  check (Alcotest.list Alcotest.string) "dfs = bfs" dfs bfs;
  check (Alcotest.list Alcotest.string) "dfs = random" dfs rnd

let test_state_switch_cost () =
  let go switching =
    let r =
      run
        ~sym_configs:[ bool_var "a"; bool_var "b" ]
        ~tweak:(fun o ->
          { o with Ex.policy = Ex.Bfs; state_switching = switching; time_slice = 2 })
        three_way
    in
    List.fold_left (fun acc (st : S.t) -> Stdlib.( +. ) acc st.S.clock) 0. (terminated r)
  in
  check Alcotest.bool "switching adds clock" true (go true > go false)

let test_noise_deterministic () =
  let go () =
    let r =
      run ~config:(fun _ -> 1)
        ~tweak:(fun o ->
          {
            o with
            Ex.noise =
              Some { Ex.jitter = 0.2; signal_delay_prob = 0.; signal_delay_us = 0.; seed = 5 };
          })
        fork_program
    in
    (List.hd (terminated r)).S.cost.Cost.latency_us
  in
  check (Alcotest.float 1e-9) "same seed, same jitter" (go ()) (go ());
  let base =
    (List.hd (terminated (run ~config:(fun _ -> 1) fork_program))).S.cost.Cost.latency_us
  in
  check Alcotest.bool "jitter changes latency" true (Float.abs (Stdlib.( -. ) (go ()) base) > 1e-9)

let test_stuck_states_killed () =
  let p =
    program ~name:"p" ~entry:"main" [ func "main" [ set "x" (lv "nope"); ret_void ] ]
  in
  let r = run p in
  check Alcotest.int "killed" 1 r.Ex.stats.Ex.states_killed;
  match r.Ex.states with
  | [ { S.status = S.Killed reason; _ } ] ->
    check Alcotest.bool "reason mentions local" true
      (String.length reason > 0)
  | _ -> Alcotest.fail "one killed state"

let tests =
  [
    tc "concrete run matches native costs" test_concrete_matches_native;
    tc "fork on symbolic branch" test_fork_on_symbolic;
    tc "path costs differ" test_costs_differ_across_paths;
    tc "infeasible paths pruned" test_infeasible_pruned;
    tc "nested forks" test_nested_forks;
    tc "max states cap" test_max_states_cap;
    tc "loop unroll limit" test_loop_unroll_limit;
    tc "effectful lib concretizes + constraint" test_effectful_concretizes_with_constraint;
    tc "benign lib drops constraint" test_benign_drops_constraint;
    tc "pure lib returns fresh symbol" test_pure_returns_fresh_symbol;
    tc "relaxation ablation" test_relaxation_ablation;
    tc "concretizeAll taints" test_concretize_all_taint;
    tc "tracing window" test_tracing_window;
    tc "signals well nested" test_signals_well_nested;
    tc "cids increasing" test_cids_strictly_increasing;
    tc "tracer disabled" test_tracer_disabled;
    tc "clock inflated" test_clock_inflated_by_overhead;
    tc "policies same paths" test_policies_explore_same_paths;
    tc "state switch cost" test_state_switch_cost;
    tc "noise deterministic" test_noise_deterministic;
    tc "stuck states killed" test_stuck_states_killed;
  ]
