(* Tests for report rendering: the functions the CLI and the benchmark
   harness build their output from. *)

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  n = 0 || go 0

let test_human_time () =
  check Alcotest.string "seconds" "5.5 s" (Violet.Report.human_time 5.5);
  check Alcotest.string "minutes" "6 m 25 s" (Violet.Report.human_time 385.);
  check Alcotest.string "exact minute" "2 m 0 s" (Violet.Report.human_time 120.)

let test_summary_row_shape () =
  let a = Violet.Pipeline.analyze_exn Fixtures.target "autocommit" in
  let row = Violet.Report.summary_row a in
  check Alcotest.int "six columns" 6 (List.length row);
  (* explored states and poor states are numeric *)
  check Alcotest.bool "explored numeric" true (int_of_string_opt (List.nth row 0) <> None);
  check Alcotest.bool "poor numeric" true (int_of_string_opt (List.nth row 1) <> None)

let test_full_report_mentions_key_facts () =
  let a = Violet.Pipeline.analyze_exn Fixtures.target "autocommit" in
  let text = Fmt.str "%a" Violet.Report.pp_analysis a in
  List.iter
    (fun needle ->
      check Alcotest.bool ("mentions " ^ needle) true (contains text needle))
    [ "autocommit"; "flush_at_trx_commit"; "fil_flush"; "POOR"; "suspicious" ]

let test_cost_table_rendering () =
  let a = Violet.Pipeline.analyze_exn Fixtures.target "autocommit" in
  let text = Fmt.str "%a" Vmodel.Impact_model.pp_cost_table a.Violet.Pipeline.model in
  check Alcotest.bool "row separators" true (contains text "|");
  check Alcotest.bool "friendly constraint" true (contains text "autocommit==ON")

let test_checker_report_rendering () =
  let model = (Violet.Pipeline.analyze_exn Fixtures.target "autocommit").Violet.Pipeline.model in
  let file = Vchecker.Config_file.parse "autocommit = ON" in
  match Vchecker.Checker.check_current ~model ~registry:Fixtures.registry ~file () with
  | Error e -> Alcotest.fail e
  | Ok report ->
    let text = Fmt.str "%a" Vchecker.Checker.pp_report report in
    check Alcotest.bool "mentions finding" true (contains text "finding");
    check Alcotest.bool "mentions validate" true (contains text "validate");
    check Alcotest.bool "mentions checked in" true (contains text "checked in")

let tests =
  [
    tc "human time" test_human_time;
    tc "summary row shape" test_summary_row_shape;
    tc "full report facts" test_full_report_mentions_key_facts;
    tc "cost table rendering" test_cost_table_rendering;
    tc "checker report rendering" test_checker_report_rendering;
  ]
