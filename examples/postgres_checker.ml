(* The continuous checker in deployment (paper Section 4.7).

   Run with:  dune exec examples/postgres_checker.exe

   An administrator analyzes PostgreSQL's wal_sync_method once, stores the
   impact model, and then validates configuration files and updates against
   it — without re-running the symbolic analysis.  This demonstrates checker
   modes 1 (update regression) and 2 (poor current value), plus model
   persistence round-tripping through a file. *)

let write_file path contents =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc contents)

let () =
  let target = Targets.Postgres_model.target in
  let registry = target.Violet.Pipeline.registry in

  (* one-time analysis at the vendor / QA side *)
  Fmt.pr "analyzing postgres/wal_sync_method ...@.";
  let a = Violet.Pipeline.analyze_exn target "wal_sync_method" in
  let model_path = Filename.temp_file "violet_model" ".sexp" in
  Vmodel.Impact_model.save a.Violet.Pipeline.model model_path;
  Fmt.pr "impact model stored at %s (%d states, %d poor)@.@." model_path
    a.Violet.Pipeline.model.Vmodel.Impact_model.explored_states
    (List.length a.Violet.Pipeline.model.Vmodel.Impact_model.poor_state_ids);

  (* the deployed checker loads the stored model *)
  let model =
    match Vmodel.Impact_model.load model_path with
    | Ok m -> m
    | Error e -> failwith e
  in

  (* mode 2: is the user's current file in a poor state? *)
  let conf_path = Filename.temp_file "postgresql" ".conf" in
  write_file conf_path
    "# production settings\nshared_buffers = 1024\nwal_sync_method = open_sync\n";
  Fmt.pr "== mode 2: checking current file (wal_sync_method = open_sync) ==@.";
  let file =
    match Vchecker.Config_file.load conf_path with Ok f -> f | Error e -> failwith e
  in
  (match Vchecker.Checker.check_current ~model ~registry ~file () with
  | Ok report -> Fmt.pr "%a@." Vchecker.Checker.pp_report report
  | Error e -> Fmt.pr "error: %s@." e);

  (* mode 1: does an update introduce a regression? *)
  let old_path = Filename.temp_file "postgresql_old" ".conf" in
  let new_path = Filename.temp_file "postgresql_new" ".conf" in
  write_file old_path "wal_sync_method = fdatasync\n";
  write_file new_path "wal_sync_method = open_sync\n";
  Fmt.pr "== mode 1: checking update fdatasync -> open_sync ==@.";
  let old_file =
    match Vchecker.Config_file.load old_path with Ok f -> f | Error e -> failwith e
  in
  let new_file =
    match Vchecker.Config_file.load new_path with Ok f -> f | Error e -> failwith e
  in
  (match Vchecker.Checker.check_update ~model ~registry ~old_file ~new_file () with
  | Ok report -> Fmt.pr "%a@." Vchecker.Checker.pp_report report
  | Error e -> Fmt.pr "error: %s@." e);

  (* and the safe direction must stay silent *)
  Fmt.pr "== mode 1 control: checking update open_sync -> fdatasync ==@.";
  match Vchecker.Checker.check_update ~model ~registry ~old_file:new_file ~new_file:old_file () with
  | Ok report -> Fmt.pr "%a@." Vchecker.Checker.pp_report report
  | Error e -> Fmt.pr "error: %s@." e
