#!/bin/sh
# One-command tier-1 check: format (when the formatter is available), build,
# full test suite.  CI and pre-commit both call this.
set -eu
cd "$(dirname "$0")/.."

if command -v ocamlformat >/dev/null 2>&1; then
  echo "== dune build @fmt =="
  dune build @fmt
else
  echo "== fmt check skipped (ocamlformat not installed) =="
fi

echo "== dune build =="
dune build

echo "== dune runtest =="
dune runtest

echo "== fast-nondet smoke (jobs=4, verdict-identity mode) =="
# a parallel fast-nondet analysis must succeed and report the same findings
# as the default path; the full env-leg suite runs in CI, this catches a
# broken mode before commit
VIOLET_JOBS=4 dune exec bin/violet_cli.exe -- analyze mysql autocommit \
  --fast-nondet >/dev/null

echo "== warm-cache smoke (persistent cross-run solver cache) =="
# the same analysis twice against one --cache-dir: the second run must prime
# entries from the first run's dump and answer from them (the model is
# byte-identical either way; test_vinc pins that, this catches a dead store)
CACHE_SMOKE_DIR=$(mktemp -d)
dune exec bin/violet_cli.exe -- analyze mysql autocommit \
  --cache-dir "$CACHE_SMOKE_DIR" >/dev/null
WARM_LINE=$(dune exec bin/violet_cli.exe -- analyze mysql autocommit \
  --cache-dir "$CACHE_SMOKE_DIR" | grep 'cross-run solver cache:')
rm -rf "$CACHE_SMOKE_DIR"
PRIMED=$(echo "$WARM_LINE" | sed -n 's/.*primed \([0-9]*\) entries.*/\1/p')
HITS=$(echo "$WARM_LINE" | sed -n 's/.*, \([0-9]*\) cache hits.*/\1/p')
if [ "${PRIMED:-0}" -le 0 ] || [ "${HITS:-0}" -le 0 ]; then
  echo "warm-cache smoke: second run did not start warm ($WARM_LINE)"
  exit 1
fi

echo "== serve round-trip smoke =="
# exercise the CLI surface end to end: export a model in registry format,
# start the daemon, check against it, shut it down
SMOKE_DIR=$(mktemp -d)
trap 'kill "${SERVE_PID:-}" "${FLEET_PID:-}" 2>/dev/null || true; rm -rf "$SMOKE_DIR"' EXIT
mkdir -p "$SMOKE_DIR/models.d"
dune exec bin/violet_cli.exe -- analyze mysql autocommit \
  --export "$SMOKE_DIR/models.d/mysql-autocommit.vmodel" >/dev/null
dune exec bin/violet_cli.exe -- serve \
  --addr "unix:$SMOKE_DIR/violet.sock" --models "$SMOKE_DIR/models.d" >/dev/null &
SERVE_PID=$!
# the daemon's `dune exec` contends for the build lock with the client's;
# wait for the bind before talking to it
i=0
while [ ! -S "$SMOKE_DIR/violet.sock" ] && [ "$i" -lt 100 ]; do
  sleep 0.1
  i=$((i + 1))
done
[ -S "$SMOKE_DIR/violet.sock" ] || { echo "serve smoke: daemon never bound"; exit 1; }
: > "$SMOKE_DIR/empty.cnf"
rc=0
dune exec bin/violet_cli.exe -- client check-current \
  --addr "unix:$SMOKE_DIR/violet.sock" mysql-autocommit "$SMOKE_DIR/empty.cnf" \
  >/dev/null || rc=$?
dune exec bin/violet_cli.exe -- client shutdown \
  --addr "unix:$SMOKE_DIR/violet.sock" >/dev/null
wait "$SERVE_PID"
if [ "$rc" -ne 2 ]; then
  echo "serve smoke: expected exit 2 (finding on the poor default), got $rc"
  exit 1
fi

echo "== fleet smoke (3 shards, kill -9 recovery) =="
# the supervised fleet: reuse the exported model, start 3 shards behind the
# router, round-trip a check, kill -9 a worker, and verify the fleet keeps
# answering while the supervisor restarts it
FLEET_DIR="$SMOKE_DIR/fleet"
dune exec bin/violet_cli.exe -- fleet start \
  --run-dir "$FLEET_DIR" --models "$SMOKE_DIR/models.d" --shards 3 \
  --probe-every 0.2 >/dev/null &
FLEET_PID=$!
i=0
while [ ! -S "$FLEET_DIR/router.sock" ] && [ "$i" -lt 100 ]; do
  sleep 0.1
  i=$((i + 1))
done
[ -S "$FLEET_DIR/router.sock" ] || { echo "fleet smoke: router never bound"; exit 1; }
rc=0
dune exec bin/violet_cli.exe -- client check-current \
  --addr "unix:$FLEET_DIR/router.sock" mysql-autocommit "$SMOKE_DIR/empty.cnf" \
  >/dev/null || rc=$?
if [ "$rc" -ne 2 ]; then
  echo "fleet smoke: expected exit 2 through the router, got $rc"
  exit 1
fi
# first "pid" in the state file is the supervisor's, the second is shard 0's
SHARD_PID=$(grep -o '"pid":[0-9]*' "$FLEET_DIR/fleet-state.json" | sed -n 2p | cut -d: -f2)
[ -n "$SHARD_PID" ] || { echo "fleet smoke: no shard pid in state file"; exit 1; }
kill -9 "$SHARD_PID"
rc=0
dune exec bin/violet_cli.exe -- client check-current \
  --addr "unix:$FLEET_DIR/router.sock" mysql-autocommit "$SMOKE_DIR/empty.cnf" \
  >/dev/null || rc=$?
if [ "$rc" -ne 2 ]; then
  echo "fleet smoke: expected exit 2 after kill -9 (failover), got $rc"
  exit 1
fi
dune exec bin/violet_cli.exe -- fleet stats --run-dir "$FLEET_DIR" >/dev/null
dune exec bin/violet_cli.exe -- fleet drain --run-dir "$FLEET_DIR" >/dev/null
wait "$FLEET_PID"

echo "== fuzz smoke (20 generated systems) =="
# score planted ground truth and run the differential oracle on a small
# corpus; `fuzz diff` exits non-zero on any disagreement and shrinks it
dune exec bin/violet_cli.exe -- fuzz run --seed 42 --count 20 >/dev/null
dune exec bin/violet_cli.exe -- fuzz diff --seed 42 --count 20 \
  --out "$SMOKE_DIR/fuzz-failures" >/dev/null

echo "== check-mode equivalence smoke =="
# the same check answered by the solver path and by the compiled decision
# tables must print byte-identical findings (the timing line aside)
for m in solver materialized hybrid; do
  dune exec bin/violet_cli.exe -- check mysql autocommit "$SMOKE_DIR/empty.cnf" \
    --check-mode "$m" | grep -v '^checked in ' > "$SMOKE_DIR/mode-$m.out"
done
cmp -s "$SMOKE_DIR/mode-solver.out" "$SMOKE_DIR/mode-materialized.out" || {
  echo "check-mode smoke: materialized findings diverged from solver"; exit 1; }
cmp -s "$SMOKE_DIR/mode-solver.out" "$SMOKE_DIR/mode-hybrid.out" || {
  echo "check-mode smoke: hybrid findings diverged from solver"; exit 1; }
grep -q 'finding' "$SMOKE_DIR/mode-solver.out" || {
  echo "check-mode smoke: no finding on the poor default - smoke proves nothing"; exit 1; }

echo "== check OK =="
