#!/bin/sh
# One-command tier-1 check: format (when the formatter is available), build,
# full test suite.  CI and pre-commit both call this.
set -eu
cd "$(dirname "$0")/.."

if command -v ocamlformat >/dev/null 2>&1; then
  echo "== dune build @fmt =="
  dune build @fmt
else
  echo "== fmt check skipped (ocamlformat not installed) =="
fi

echo "== dune build =="
dune build

echo "== dune runtest =="
dune runtest

echo "== check OK =="
